// Package qasm parses and prints the OpenQASM 2.0 subset that the AccQOC
// benchmark suite uses: a single quantum register, the qelib1 gate
// vocabulary from package gate, and pass-through handling of creg, measure
// and barrier statements. Parameter expressions support numbers, pi, the
// four arithmetic operators, unary minus and parentheses.
package qasm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"accqoc/internal/circuit"
	"accqoc/internal/gate"
)

// Parse converts OpenQASM 2.0 source into a Circuit. Measure and barrier
// statements are parsed and discarded (the pipeline compiles the unitary
// part of programs). Multiple qregs are concatenated into one wire space in
// declaration order.
func Parse(src string) (*circuit.Circuit, error) {
	p := &parser{}
	lines := splitStatements(src)
	for _, ln := range lines {
		if err := p.statement(ln); err != nil {
			return nil, err
		}
	}
	if p.circ == nil {
		return nil, fmt.Errorf("qasm: no qreg declared")
	}
	return p.circ, nil
}

// ParseBudget parses OpenQASM source under a request-ingestion budget: a
// program exceeding maxGates gates (when maxGates > 0) is rejected so a
// public compilation endpoint cannot be fed an arbitrarily large circuit.
func ParseBudget(src string, maxGates int) (*circuit.Circuit, error) {
	c, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if maxGates > 0 && c.GateCount() > maxGates {
		return nil, fmt.Errorf("qasm: program has %d gates, budget is %d", c.GateCount(), maxGates)
	}
	return c, nil
}

// splitStatements strips comments and splits on ';'.
func splitStatements(src string) []string {
	var clean strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteByte('\n')
	}
	parts := strings.Split(clean.String(), ";")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// maxQubits caps the parser's total wire count. Parsing itself allocates
// nothing per qubit, but every downstream pass (DAG construction, mapping)
// does — a few-byte declaration like "qreg q[2000000000]" must be rejected
// at the door, not melt the first consumer.
const maxQubits = 1 << 20

// maxExprDepth caps parameter-expression nesting. The expression parser is
// recursive-descent; without a cap, inputs like "rx((((…((1))…)))) q[0]"
// or a long run of unary minuses recurse once per character and overflow
// the goroutine stack (a fatal crash, not a recoverable panic).
const maxExprDepth = 64

type qreg struct {
	name   string
	offset int
	size   int
}

type parser struct {
	regs []qreg
	circ *circuit.Circuit
	n    int
}

func (p *parser) statement(s string) error {
	switch {
	case strings.HasPrefix(s, "OPENQASM"), strings.HasPrefix(s, "include"):
		return nil
	case strings.HasPrefix(s, "qreg"):
		return p.qregDecl(s)
	case strings.HasPrefix(s, "creg"),
		strings.HasPrefix(s, "barrier"),
		strings.HasPrefix(s, "measure"),
		strings.HasPrefix(s, "reset"):
		return nil // parsed and discarded
	default:
		return p.gateStmt(s)
	}
}

func (p *parser) qregDecl(s string) error {
	// qreg name[size]
	body := strings.TrimSpace(strings.TrimPrefix(s, "qreg"))
	name, size, err := parseIndexed(body)
	if err != nil {
		return fmt.Errorf("qasm: bad qreg declaration %q: %w", s, err)
	}
	// A non-positive size is invalid OpenQASM; letting it through used to
	// drive circuit.New(n) with a negative wire count (a panic). The
	// subtraction form of the total-size check cannot overflow.
	if size <= 0 {
		return fmt.Errorf("qasm: qreg %s[%d]: size must be positive", name, size)
	}
	if size > maxQubits-p.n {
		return fmt.Errorf("qasm: qreg %s[%d]: program exceeds %d total qubits", name, size, maxQubits)
	}
	for _, r := range p.regs {
		if r.name == name {
			return fmt.Errorf("qasm: qreg %q redeclared", name)
		}
	}
	p.regs = append(p.regs, qreg{name: name, offset: p.n, size: size})
	p.n += size
	// Widen the wire space in place: gates appended between two qreg
	// declarations are preserved (rebuilding the circuit here used to
	// silently drop them).
	if p.circ == nil {
		p.circ = circuit.New(p.n)
	} else {
		p.circ.NumQubits = p.n
	}
	return nil
}

// parseIndexed parses "name[idx]" returning the name and index.
func parseIndexed(s string) (string, int, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "[")
	close := strings.Index(s, "]")
	if open < 0 || close < open {
		return "", 0, fmt.Errorf("expected name[index], got %q", s)
	}
	name := strings.TrimSpace(s[:open])
	idx, err := strconv.Atoi(strings.TrimSpace(s[open+1 : close]))
	if err != nil {
		return "", 0, fmt.Errorf("bad index in %q: %w", s, err)
	}
	return name, idx, nil
}

func (p *parser) resolveQubit(ref string) (int, error) {
	name, idx, err := parseIndexed(ref)
	if err != nil {
		return 0, err
	}
	for _, r := range p.regs {
		if r.name == name {
			if idx < 0 || idx >= r.size {
				return 0, fmt.Errorf("qasm: index %d out of range for qreg %s[%d]", idx, name, r.size)
			}
			return r.offset + idx, nil
		}
	}
	return 0, fmt.Errorf("qasm: unknown qreg %q", name)
}

func (p *parser) gateStmt(s string) error {
	if p.circ == nil {
		return fmt.Errorf("qasm: gate %q before any qreg declaration", s)
	}
	// Shape: name[(params)] operand[, operand ...]
	head := s
	var paramText string
	if open := strings.Index(s, "("); open >= 0 {
		depth := 0
		closeAt := -1
		for i := open; i < len(s); i++ {
			switch s[i] {
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 {
					closeAt = i
				}
			}
			if closeAt >= 0 {
				break
			}
		}
		if closeAt < 0 {
			return fmt.Errorf("qasm: unbalanced parentheses in %q", s)
		}
		paramText = s[open+1 : closeAt]
		head = s[:open] + " " + s[closeAt+1:]
	}
	fields := strings.Fields(head)
	if len(fields) < 2 {
		return fmt.Errorf("qasm: malformed gate statement %q", s)
	}
	name := gate.Name(fields[0])
	if !gate.Known(name) {
		return fmt.Errorf("qasm: unsupported gate %q in %q", name, s)
	}
	operands := strings.Split(strings.Join(fields[1:], ""), ",")
	qubits := make([]int, 0, len(operands))
	for _, op := range operands {
		q, err := p.resolveQubit(op)
		if err != nil {
			return fmt.Errorf("qasm: %q: %w", s, err)
		}
		qubits = append(qubits, q)
	}
	var params []float64
	if paramText != "" {
		for _, expr := range splitTopLevel(paramText, ',') {
			v, err := evalExpr(expr)
			if err != nil {
				return fmt.Errorf("qasm: %q: %w", s, err)
			}
			// Arithmetic can overflow to ±Inf (e.g. 1e308*10) without a
			// parse error; a non-finite rotation angle is physically
			// meaningless and poisons every downstream unitary with NaNs.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("qasm: %q: parameter %q is not finite", s, expr)
			}
			params = append(params, v)
		}
	}
	return p.circ.Append(name, qubits, params...)
}

// splitTopLevel splits s on sep outside parentheses.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// evalExpr evaluates an arithmetic parameter expression with +,-,*,/,
// unary minus, parentheses, decimal literals and the constant pi.
func evalExpr(s string) (float64, error) {
	e := &exprParser{src: strings.TrimSpace(s)}
	v, err := e.parseSum()
	if err != nil {
		return 0, err
	}
	e.skipSpace()
	if e.pos != len(e.src) {
		return 0, fmt.Errorf("trailing input in expression %q at %d", e.src, e.pos)
	}
	return v, nil
}

type exprParser struct {
	src   string
	pos   int
	depth int
}

func (e *exprParser) skipSpace() {
	for e.pos < len(e.src) && (e.src[e.pos] == ' ' || e.src[e.pos] == '\t') {
		e.pos++
	}
}

func (e *exprParser) peek() byte {
	if e.pos < len(e.src) {
		return e.src[e.pos]
	}
	return 0
}

func (e *exprParser) parseSum() (float64, error) {
	v, err := e.parseProduct()
	if err != nil {
		return 0, err
	}
	for {
		e.skipSpace()
		switch e.peek() {
		case '+':
			e.pos++
			w, err := e.parseProduct()
			if err != nil {
				return 0, err
			}
			v += w
		case '-':
			e.pos++
			w, err := e.parseProduct()
			if err != nil {
				return 0, err
			}
			v -= w
		default:
			return v, nil
		}
	}
}

func (e *exprParser) parseProduct() (float64, error) {
	v, err := e.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		e.skipSpace()
		switch e.peek() {
		case '*':
			e.pos++
			w, err := e.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= w
		case '/':
			e.pos++
			w, err := e.parseUnary()
			if err != nil {
				return 0, err
			}
			if w == 0 {
				return 0, fmt.Errorf("division by zero in %q", e.src)
			}
			v /= w
		default:
			return v, nil
		}
	}
}

func (e *exprParser) parseUnary() (float64, error) {
	// Every recursion cycle (unary sign chains, parenthesized sums) passes
	// through here, so this single check bounds the whole parser's stack.
	if e.depth >= maxExprDepth {
		return 0, fmt.Errorf("expression %q nests deeper than %d", e.src, maxExprDepth)
	}
	e.depth++
	defer func() { e.depth-- }()
	e.skipSpace()
	if e.peek() == '-' {
		e.pos++
		v, err := e.parseUnary()
		return -v, err
	}
	if e.peek() == '+' {
		e.pos++
		return e.parseUnary()
	}
	return e.parseAtom()
}

func (e *exprParser) parseAtom() (float64, error) {
	e.skipSpace()
	if e.peek() == '(' {
		e.pos++
		v, err := e.parseSum()
		if err != nil {
			return 0, err
		}
		e.skipSpace()
		if e.peek() != ')' {
			return 0, fmt.Errorf("missing ')' in %q", e.src)
		}
		e.pos++
		return v, nil
	}
	start := e.pos
	for e.pos < len(e.src) {
		c := e.src[e.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
			(c >= 'a' && c <= 'z' && c != 'e') || (c >= 'A' && c <= 'Z' && c != 'E') {
			e.pos++
			continue
		}
		// Allow exponent signs like 1e-3.
		if (c == '+' || c == '-') && e.pos > start &&
			(e.src[e.pos-1] == 'e' || e.src[e.pos-1] == 'E') {
			e.pos++
			continue
		}
		break
	}
	tok := e.src[start:e.pos]
	if tok == "" {
		return 0, fmt.Errorf("expected number or pi at %d in %q", start, e.src)
	}
	if strings.EqualFold(tok, "pi") {
		return math.Pi, nil
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("bad numeric token %q in %q", tok, e.src)
	}
	return v, nil
}

// Print renders a circuit as OpenQASM 2.0 with a single register q and a
// matching classical register (for round-trip compatibility with common
// tools).
func Print(c *circuit.Circuit) string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	fmt.Fprintf(&b, "creg c[%d];\n", c.NumQubits)
	for _, g := range c.Gates {
		b.WriteString(string(g.Name))
		if len(g.Params) > 0 {
			b.WriteByte('(')
			for i, p := range g.Params {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(formatParam(p))
			}
			b.WriteByte(')')
		}
		b.WriteByte(' ')
		for i, q := range g.Qubits {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "q[%d]", q)
		}
		b.WriteString(";\n")
	}
	return b.String()
}

// formatParam prints simple rational multiples of pi symbolically so the
// output resembles hand-written QASM, falling back to full precision.
func formatParam(v float64) string {
	for den := 1; den <= 16; den++ {
		for num := -32; num <= 32; num++ {
			if num == 0 {
				continue
			}
			if math.Abs(v-math.Pi*float64(num)/float64(den)) < 1e-12 {
				s := "pi"
				if num != 1 {
					if num == -1 {
						s = "-pi"
					} else {
						s = fmt.Sprintf("%d*pi", num)
					}
				}
				if den != 1 {
					s += fmt.Sprintf("/%d", den)
				}
				return s
			}
		}
	}
	return strconv.FormatFloat(v, 'g', 17, 64)
}

// SortedMixNames returns the gate names of an instruction mix sorted
// alphabetically, a helper for deterministic table printing.
func SortedMixNames(mix map[gate.Name]int) []gate.Name {
	names := make([]gate.Name, 0, len(mix))
	for n := range mix {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}
