package qasm

import (
	"testing"

	"accqoc/internal/workload"
)

// FuzzParse is the parser's no-panic guarantee: arbitrary input must
// either parse or return an error — never panic, never overflow the
// stack. Accepted programs must additionally survive a Print→Parse round
// trip with their shape intact (the invariant qasmgen and the server's
// ingestion path both rely on).
//
// The seed corpus combines what the generators emit (the §VI-A suite via
// the same workload constructors cmd/qasmgen uses) with hand-written edge
// cases, including the crashers this fuzzer found: negative and
// int-overflowing qreg sizes reaching circuit.New, unbounded expression
// recursion overflowing the stack, arithmetic overflow to ±Inf passing
// silently, and a second qreg declaration dropping already-parsed gates.
// More crashers live in testdata/fuzz/FuzzParse.
func FuzzParse(f *testing.F) {
	for _, p := range workload.NamedSuite() {
		f.Add(Print(p.Circuit))
	}
	f.Add(Print(workload.QFT(4).Circuit))
	if rp, err := workload.Random("fuzz", 3, 16, 7); err == nil {
		f.Add(Print(rp.Circuit))
	}
	for _, s := range []string{
		sample,
		"qreg q[-1];",
		"qreg q[0];",
		"qreg a[9223372036854775807];\nqreg b[9223372036854775807];",
		"qreg q[2000000000];",
		"qreg q[1];\nrx(----------------1) q[0];",
		"qreg q[1];\nrx((((((((1)))))))) q[0];",
		"qreg q[1];\nrx(1e308*10) q[0];",
		"qreg a[1];\nh a[0];\nqreg b[1];\ncx a[0],b[0];",
		"qreg q[2];\ncx q[0],q[0];",
		"qreg q[2];\nmeasure q[0] -> c[0];\nbarrier q;\nh q[1];",
		"qreg q[1];\nu3(0.1,-0.2,3*pi/4) q[0];",
		"qreg q[1];\nrx(1/0) q[0];",
		"qreg q[1];\nrx() q[0];",
		"h q[0];",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return
		}
		c2, rerr := Parse(Print(c))
		if rerr != nil {
			t.Fatalf("accepted program failed the Print round trip: %v\ninput: %q", rerr, src)
		}
		if c2.NumQubits != c.NumQubits || c2.GateCount() != c.GateCount() {
			t.Fatalf("round trip changed shape: %d→%d qubits, %d→%d gates\ninput: %q",
				c.NumQubits, c2.NumQubits, c.GateCount(), c2.GateCount(), src)
		}
	})
}
