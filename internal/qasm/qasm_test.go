package qasm

import (
	"math"
	"strings"
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/gate"
)

const sample = `
OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2]; // trailing comment
u3(pi/2, 0, -pi) q[1];
tdg q[2];
barrier q[0];
measure q[0] -> c[0];
`

func TestParseSample(t *testing.T) {
	c, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 3 {
		t.Fatalf("NumQubits = %d", c.NumQubits)
	}
	if c.GateCount() != 5 {
		t.Fatalf("GateCount = %d, want 5 (measure/barrier dropped)", c.GateCount())
	}
	g := c.Gates[2]
	if g.Name != gate.RZ || math.Abs(g.Params[0]-math.Pi/4) > 1e-15 {
		t.Fatalf("rz parse wrong: %+v", g)
	}
	u := c.Gates[3]
	if u.Name != gate.U3 || len(u.Params) != 3 || math.Abs(u.Params[2]+math.Pi) > 1e-15 {
		t.Fatalf("u3 parse wrong: %+v", u)
	}
	if c.Gates[1].Qubits[0] != 0 || c.Gates[1].Qubits[1] != 1 {
		t.Fatalf("cx operands wrong: %+v", c.Gates[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"qreg q[2]; bogus q[0];",
		"qreg q[2]; x q[5];",
		"qreg q[2]; x r[0];",
		"x q[0];",             // gate before qreg
		"qreg q[2]; rz q[0];", // missing parameter
		"qreg q[2]; rz(pi/0) q[0];",
		"qreg q[2]; rz(pi q[0];",
		"qreg q[bad];",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseMultipleQregs(t *testing.T) {
	src := "qreg a[2]; qreg b[2]; cx a[1],b[0];"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 4 {
		t.Fatalf("NumQubits = %d, want 4", c.NumQubits)
	}
	g := c.Gates[0]
	if g.Qubits[0] != 1 || g.Qubits[1] != 2 {
		t.Fatalf("cross-register operands = %v, want [1 2]", g.Qubits)
	}
}

func TestExprEvaluator(t *testing.T) {
	cases := map[string]float64{
		"1":           1,
		"pi":          math.Pi,
		"-pi/2":       -math.Pi / 2,
		"2*pi/3":      2 * math.Pi / 3,
		"1+2*3":       7,
		"(1+2)*3":     9,
		"-(1+1)":      -2,
		"1e-3":        0.001,
		"3.5/7":       0.5,
		"pi*0.25":     math.Pi / 4,
		"+2":          2,
		"1 - 2 - 3":   -4,
		"8/2/2":       2,
		"2*(3+(4-1))": 12,
		"1.5E2":       150,
	}
	for expr, want := range cases {
		got, err := evalExpr(expr)
		if err != nil {
			t.Errorf("evalExpr(%q): %v", expr, err)
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("evalExpr(%q) = %v, want %v", expr, got, want)
		}
	}
}

func TestExprEvaluatorErrors(t *testing.T) {
	for _, expr := range []string{"", "1+", "(1", "foo", "1/0", "1 2"} {
		if _, err := evalExpr(expr); err == nil {
			t.Errorf("evalExpr(%q) succeeded, want error", expr)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	c := circuit.New(4)
	c.MustAppend(gate.H, []int{0})
	c.MustAppend(gate.CX, []int{0, 3})
	c.MustAppend(gate.RZ, []int{2}, math.Pi/8)
	c.MustAppend(gate.U3, []int{1}, math.Pi/2, 0.125, -math.Pi)
	c.MustAppend(gate.Swap, []int{1, 2})

	src := Print(c)
	back, err := Parse(src)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nsource:\n%s", err, src)
	}
	if back.NumQubits != c.NumQubits || back.GateCount() != c.GateCount() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.NumQubits, back.GateCount(), c.NumQubits, c.GateCount())
	}
	for i := range c.Gates {
		a, b := c.Gates[i], back.Gates[i]
		if a.Name != b.Name {
			t.Fatalf("gate %d name %s vs %s", i, a.Name, b.Name)
		}
		for j := range a.Qubits {
			if a.Qubits[j] != b.Qubits[j] {
				t.Fatalf("gate %d qubits %v vs %v", i, a.Qubits, b.Qubits)
			}
		}
		for j := range a.Params {
			if math.Abs(a.Params[j]-b.Params[j]) > 1e-12 {
				t.Fatalf("gate %d params %v vs %v", i, a.Params, b.Params)
			}
		}
	}
}

func TestPrintSymbolicPi(t *testing.T) {
	c := circuit.New(1)
	c.MustAppend(gate.RZ, []int{0}, math.Pi/4)
	out := Print(c)
	if !strings.Contains(out, "rz(pi/4)") {
		t.Fatalf("expected symbolic pi/4 in output:\n%s", out)
	}
}

func TestParseNoQreg(t *testing.T) {
	if _, err := Parse("OPENQASM 2.0;"); err == nil {
		t.Fatal("expected error for program without qreg")
	}
}

// TestParseRejectsBadQregSizes pins the crasher fixes surfaced by
// FuzzParse: non-positive and int-overflowing register sizes must come
// back as errors, never reach circuit.New (which panics on negative wire
// counts), and never blow past the parser's total-qubit ceiling.
func TestParseRejectsBadQregSizes(t *testing.T) {
	for _, src := range []string{
		"qreg q[-1];",
		"qreg q[0];",
		"qreg a[9223372036854775807];\nqreg b[9223372036854775807];",
		"qreg q[2000000000];",
		"qreg a[2];\nqreg a[3];",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted an invalid register", src)
		}
	}
}

// TestParseMultiQregKeepsGates pins the gate-drop fix: a gate appended
// between two qreg declarations used to be silently discarded when the
// second declaration rebuilt the circuit.
func TestParseMultiQregKeepsGates(t *testing.T) {
	c, err := Parse("qreg a[1];\nh a[0];\nqreg b[1];\ncx a[0],b[0];")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 2 || c.GateCount() != 2 {
		t.Fatalf("got %d qubits, %d gates; want 2 and 2 (h dropped?)", c.NumQubits, c.GateCount())
	}
	if c.Gates[0].Name != gate.H || c.Gates[1].Name != gate.CX {
		t.Fatalf("gate order %v", c.Gates)
	}
}

// TestParseExprDepthBounded pins the stack-overflow fix: deeply nested
// parameter expressions error out instead of recursing per character.
func TestParseExprDepthBounded(t *testing.T) {
	deep := "qreg q[1];\nrx(" + strings.Repeat("(", 50000) + "1" + strings.Repeat(")", 50000) + ") q[0];"
	if _, err := Parse(deep); err == nil {
		t.Fatal("unbounded parenthesis nesting accepted")
	}
	minus := "qreg q[1];\nrx(" + strings.Repeat("-", 50000) + "1) q[0];"
	if _, err := Parse(minus); err == nil {
		t.Fatal("unbounded unary-minus nesting accepted")
	}
	// Reasonable nesting still parses.
	if _, err := Parse("qreg q[1];\nrx(-(-(2*(pi/4)))) q[0];"); err != nil {
		t.Fatalf("modest nesting rejected: %v", err)
	}
}

// TestParseRejectsNonFiniteParams pins the overflow-to-Inf fix.
func TestParseRejectsNonFiniteParams(t *testing.T) {
	if _, err := Parse("qreg q[1];\nrx(1e308*10) q[0];"); err == nil {
		t.Fatal("infinite parameter accepted")
	}
}
