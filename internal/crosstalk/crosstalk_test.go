package crosstalk

import (
	"math"
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/gate"
	"accqoc/internal/topology"
)

func TestMetricCountsClosePairs(t *testing.T) {
	dev := topology.Linear(6)
	// Two CX in the same layer on adjacent couplings (0,1) and (2,3):
	// edge distance 1 → one close pair.
	c := circuit.New(6)
	c.MustAppend(gate.CX, []int{0, 1})
	c.MustAppend(gate.CX, []int{2, 3})
	if got := Metric(c, dev); got != 1 {
		t.Fatalf("Metric = %d, want 1", got)
	}
	// Far couplings (0,1) and (4,5): edge distance 3 → no close pair.
	far := circuit.New(6)
	far.MustAppend(gate.CX, []int{0, 1})
	far.MustAppend(gate.CX, []int{4, 5})
	if got := Metric(far, dev); got != 0 {
		t.Fatalf("Metric(far) = %d, want 0", got)
	}
}

func TestMetricRespectsLayers(t *testing.T) {
	dev := topology.Linear(4)
	// Sequential CXs on overlapping qubits are in different layers → no
	// concurrency → no crosstalk.
	c := circuit.New(4)
	c.MustAppend(gate.CX, []int{0, 1})
	c.MustAppend(gate.CX, []int{1, 2})
	if got := Metric(c, dev); got != 0 {
		t.Fatalf("sequential gates counted as concurrent: %d", got)
	}
}

func TestPerLayer(t *testing.T) {
	dev := topology.Linear(6)
	c := circuit.New(6)
	c.MustAppend(gate.CX, []int{0, 1}) // layer 0
	c.MustAppend(gate.CX, []int{2, 3}) // layer 0 (close to above)
	c.MustAppend(gate.CX, []int{0, 1}) // layer 1
	per := PerLayer(c, dev)
	if len(per) != 2 || per[0] != 1 || per[1] != 0 {
		t.Fatalf("PerLayer = %v", per)
	}
}

func TestSingleQubitGatesIgnored(t *testing.T) {
	dev := topology.Linear(4)
	c := circuit.New(4)
	c.MustAppend(gate.H, []int{0})
	c.MustAppend(gate.H, []int{1})
	c.MustAppend(gate.CX, []int{2, 3})
	if Metric(c, dev) != 0 {
		t.Fatal("single-qubit gates should not contribute")
	}
}

func TestPairErrorModelDeterministicAndInflated(t *testing.T) {
	dev := topology.Melbourne()
	m := NewPairErrorModel(dev)
	e1 := m.BaselineError(0, 1)
	e2 := m.BaselineError(1, 0)
	if e1 != e2 {
		t.Fatal("baseline error must be order-invariant")
	}
	if e1 != m.BaselineError(0, 1) {
		t.Fatal("baseline error must be deterministic")
	}
	if got := m.CrosstalkError(0, 1); math.Abs(got-e1*InflationFactor) > 1e-15 {
		t.Fatal("crosstalk error must be inflated by InflationFactor")
	}
	// Error rates stay in a plausible range around the calibrated mean.
	cal := dev.Calibration.CXError
	if e1 < 0.5*cal || e1 > 1.5*cal {
		t.Fatalf("baseline error %v implausible vs mean %v", e1, cal)
	}
}

func TestFigure5Rows(t *testing.T) {
	dev := topology.Melbourne()
	rows := Figure5(dev, 6)
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	var ratioSum float64
	for _, r := range rows {
		if r.Crosstalk <= r.Isolated {
			t.Fatalf("pair %v: crosstalk %v not above isolated %v", r.Pair, r.Crosstalk, r.Isolated)
		}
		ratioSum += r.Crosstalk / r.Isolated
	}
	avg := ratioSum / float64(len(rows))
	if math.Abs(avg-1.20) > 1e-9 {
		t.Fatalf("average inflation = %v, want 1.20 (paper: +20%%)", avg)
	}
}

func TestFigure5ClampsPairCount(t *testing.T) {
	dev := topology.Linear(3)
	rows := Figure5(dev, 99)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (device has 2 couplings)", len(rows))
	}
}

func TestProgramFidelity(t *testing.T) {
	dev := topology.Melbourne()
	c := circuit.New(14)
	c.MustAppend(gate.CX, []int{0, 1})
	f1 := ProgramFidelity(c, dev, 1000)
	if f1 <= 0 || f1 >= 1 {
		t.Fatalf("fidelity %v out of range", f1)
	}
	// Adding a concurrent close CX must reduce fidelity more than its own
	// isolated error would (crosstalk inflation).
	c2 := circuit.New(14)
	c2.MustAppend(gate.CX, []int{0, 1})
	c2.MustAppend(gate.CX, []int{2, 3})
	f2 := ProgramFidelity(c2, dev, 1000)
	if f2 >= f1 {
		t.Fatal("two crosstalking CXs should have lower fidelity than one")
	}
	// Longer latency decays fidelity.
	f3 := ProgramFidelity(c, dev, 50000)
	if f3 >= f1 {
		t.Fatal("longer latency should reduce fidelity")
	}
}
