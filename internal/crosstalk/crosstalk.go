// Package crosstalk quantifies the crosstalk exposure of a mapped circuit
// and models the error-rate inflation that nearby concurrent CX gates cause
// (the paper's Figure 5 and §IV-A / §VI-C).
//
// The metric follows Murali et al. (adopted by the paper): the total
// crosstalk effect of a program is the number of occurrences of "close"
// CNOT pairs summed over circuit layers, where two concurrent CX gates are
// close when their coupling edges are within distance ≤ 1 on the device.
package crosstalk

import (
	"math"
	"math/rand"

	"accqoc/internal/circuit"
	"accqoc/internal/topology"
)

// CloseDistance is the edge-to-edge coupling distance at or below which two
// concurrent CX gates are counted as a crosstalking pair.
const CloseDistance = 1

// InflationFactor is the average error-rate inflation a CX suffers from a
// nearby concurrent CX. The paper measures "average 20% higher error rate"
// on six Melbourne pairs (Fig. 5).
const InflationFactor = 1.20

// Metric counts close concurrent CX pairs per layer and returns the total.
// Gates on physical qubits: the circuit must already be mapped to the
// device. Single-qubit gates are ignored.
func Metric(c *circuit.Circuit, dev *topology.Device) int {
	dag := circuit.BuildDAG(c)
	total := 0
	for _, layer := range dag.Layers() {
		edges := layerCXEdges(c, layer)
		for i := 0; i < len(edges); i++ {
			for j := i + 1; j < len(edges); j++ {
				d := dev.EdgeDistance(edges[i], edges[j])
				if d >= 0 && d <= CloseDistance {
					total++
				}
			}
		}
	}
	return total
}

// PerLayer returns the close-pair count of each ASAP layer (for plots).
func PerLayer(c *circuit.Circuit, dev *topology.Device) []int {
	dag := circuit.BuildDAG(c)
	layers := dag.Layers()
	out := make([]int, len(layers))
	for l, layer := range layers {
		edges := layerCXEdges(c, layer)
		for i := 0; i < len(edges); i++ {
			for j := i + 1; j < len(edges); j++ {
				d := dev.EdgeDistance(edges[i], edges[j])
				if d >= 0 && d <= CloseDistance {
					out[l]++
				}
			}
		}
	}
	return out
}

func layerCXEdges(c *circuit.Circuit, layer []int) []topology.Edge {
	var edges []topology.Edge
	for _, gi := range layer {
		g := c.Gates[gi]
		if len(g.Qubits) == 2 {
			edges = append(edges, topology.Edge{From: g.Qubits[0], To: g.Qubits[1]})
		}
	}
	return edges
}

// PairErrorModel generates the Figure 5 data: per-coupling baseline CX
// error rates and the inflated rates under a nearby concurrent CX. Baseline
// rates are drawn around the device's calibrated average with a
// deterministic per-edge spread, mimicking the pair-to-pair variation of
// real calibration data.
type PairErrorModel struct {
	dev *topology.Device
}

// NewPairErrorModel builds the error model for a device.
func NewPairErrorModel(dev *topology.Device) *PairErrorModel {
	return &PairErrorModel{dev: dev}
}

// BaselineError returns the isolated CX error rate for the undirected
// coupling (a, b). It is deterministic in (device, pair).
func (m *PairErrorModel) BaselineError(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	// Deterministic per-pair jitter in [0.6, 1.4) of the calibrated mean —
	// the spread visible in the paper's Fig. 5.
	rng := rand.New(rand.NewSource(int64(a*1009 + b*9176 + 12345)))
	jitter := 0.6 + 0.8*rng.Float64()
	return m.dev.Calibration.CXError * jitter
}

// CrosstalkError returns the CX error rate for pair (a, b) while another CX
// runs concurrently within CloseDistance.
func (m *PairErrorModel) CrosstalkError(a, b int) float64 {
	return m.BaselineError(a, b) * InflationFactor
}

// FigureRow is one x-position of the Figure 5 plot.
type FigureRow struct {
	Pair      [2]int
	Isolated  float64
	Crosstalk float64
}

// Figure5 returns rows for the requested number of couplings (the paper
// plots six Melbourne pairs). Pairs are taken from the device's undirected
// edge list in order.
func Figure5(dev *topology.Device, pairs int) []FigureRow {
	m := NewPairErrorModel(dev)
	edges := dev.UndirectedEdges()
	if pairs > len(edges) {
		pairs = len(edges)
	}
	rows := make([]FigureRow, 0, pairs)
	for _, e := range edges[:pairs] {
		rows = append(rows, FigureRow{
			Pair:      [2]int{e.From, e.To},
			Isolated:  m.BaselineError(e.From, e.To),
			Crosstalk: m.CrosstalkError(e.From, e.To),
		})
	}
	return rows
}

// ProgramFidelity estimates a mapped program's success probability from
// gate errors, crosstalk inflation and decoherence, following the §II-E
// error accounting: exponential decay over the critical-path latency plus
// per-gate error products.
//
// latencyNs is the program's overall latency (from the latency package).
func ProgramFidelity(c *circuit.Circuit, dev *topology.Device, latencyNs float64) float64 {
	cal := dev.Calibration
	m := NewPairErrorModel(dev)
	dag := circuit.BuildDAG(c)

	fidelity := 1.0
	for _, layer := range dag.Layers() {
		edges := layerCXEdges(c, layer)
		for _, gi := range layer {
			g := c.Gates[gi]
			if len(g.Qubits) != 2 {
				fidelity *= 1 - cal.Gate1QError
				continue
			}
			self := topology.Edge{From: g.Qubits[0], To: g.Qubits[1]}
			err := m.BaselineError(self.From, self.To)
			for _, other := range edges {
				if other == self {
					continue
				}
				d := dev.EdgeDistance(self, other)
				if d >= 0 && d <= CloseDistance {
					err = m.CrosstalkError(self.From, self.To)
					break
				}
			}
			fidelity *= 1 - err
		}
	}
	// Coherence-limited decay over the run, using T1 as in §II-E:
	// error = 1 − e^{−t/T1}.
	decay := 1.0
	if cal.T1ns > 0 {
		decay = math.Exp(-latencyNs / cal.T1ns)
	}
	return fidelity * decay
}
