package precompile

import (
	"sort"
	"sync"
	"time"

	"accqoc/internal/cmat"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/partition"
	"accqoc/internal/pulse"
	"accqoc/internal/simgraph"
	"accqoc/internal/similarity"
)

// ParallelBuildResult extends BuildStats with the worker-level accounting
// of §V-D.
type ParallelBuildResult struct {
	Library *Library
	Stats   *BuildStats
	// Workers is the worker count used.
	Workers int
	// PartMakespan is the predicted critical path (max part weight) from
	// the balanced MST partition, in estimated iterations.
	PartMakespan float64
	// SerialWeight is the summed estimated iterations (1-worker cost).
	SerialWeight float64
}

// ParallelBuild trains a group category on k workers following §V-D: per
// size class the similarity MST is balance-partitioned into k connected
// sub-trees (METIS's role), each worker trains its sub-trees in local Prim
// order, and a sub-tree whose MST parent landed on another worker starts
// from scratch — the "soft dependency" the paper exploits ("we can always
// train a group starting from identity matrix").
func ParallelBuild(uniq []*grouping.UniqueGroup, cfg Config, workers int) (*ParallelBuildResult, error) {
	cfg = cfg.withDefaults()
	if workers < 1 {
		workers = 1
	}
	out := &ParallelBuildResult{
		Library: NewLibrary(),
		Stats:   &BuildStats{},
		Workers: workers,
	}
	start := time.Now()

	bySize := map[int][]*grouping.UniqueGroup{}
	for _, u := range uniq {
		bySize[u.NumQubits] = append(bySize[u.NumQubits], u)
	}
	sizes := make([]int, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)

	var mu sync.Mutex // guards out.Library and out.Stats
	for _, size := range sizes {
		class := bySize[size]
		if err := parallelClass(out, &mu, class, size, cfg, workers); err != nil {
			return nil, err
		}
	}
	out.Stats.Elapsed = time.Since(start)
	return out, nil
}

// jobNode is one vertex of a worker's local training schedule.
type jobNode struct {
	group    int     // index into the class
	warmFrom int     // class index whose pulse seeds this one; -1 for cold
	distance float64 // MST edge distance to the warm-start source
}

func parallelClass(out *ParallelBuildResult, mu *sync.Mutex, class []*grouping.UniqueGroup, size int, cfg Config, workers int) error {
	sys, err := hamiltonian.ForQubits(size, cfg.Ham)
	if err != nil {
		return err
	}
	us := make([]*cmat.Matrix, len(class))
	for i, g := range class {
		u, uerr := g.Group.Unitary()
		if uerr != nil {
			return uerr
		}
		us[i] = canonicalUnitary(u)
	}

	// MST over the class; single-group classes go straight to one worker.
	var mst *simgraph.MST
	if len(class) > 1 {
		g, gerr := simgraph.Build(us, cfg.Similarity)
		if gerr != nil {
			return gerr
		}
		mst, err = g.PrimMST(0)
		if err != nil {
			return err
		}
	}

	// Partition the MST into balanced connected parts (§V-D). Node
	// weights estimate training cost: warm starts get cheaper with
	// similarity (base + slope·distance), the identity root trains cold.
	const (
		baseIters = 40.0
		slope     = 400.0
		coldIters = 300.0
	)
	schedules := make([][]jobNode, 0, workers)
	if mst == nil {
		schedules = append(schedules, []jobNode{{group: 0, warmFrom: -1}})
		out.SerialWeight += coldIters
		if coldIters > out.PartMakespan {
			out.PartMakespan = coldIters
		}
	} else {
		// Build the vertex-weighted tree over MST vertices (vertex 0 is
		// the identity; weight 0 — it needs no training).
		parent := mst.Parent
		weights := make([]float64, len(parent))
		for v := range weights {
			if v == 0 {
				continue
			}
			if parent[v] == 0 {
				weights[v] = coldIters
			} else {
				weights[v] = baseIters + slope*mst.Cost[v]
			}
			out.SerialWeight += weights[v]
		}
		tree, terr := partition.NewTree(parent, weights)
		if terr != nil {
			return terr
		}
		parts, perr := partition.Balanced(tree, workers)
		if perr != nil {
			return perr
		}
		if parts.Makespan > out.PartMakespan {
			out.PartMakespan = parts.Makespan
		}
		// Each part trains in the global Prim order restricted to its
		// vertices; a vertex whose parent is outside the part goes cold.
		byPart := map[int][]jobNode{}
		for _, v := range mst.Order {
			if v == 0 {
				continue
			}
			p := parts.Part[v]
			warm := -1
			if parent[v] != 0 && parts.Part[parent[v]] == p {
				warm = parent[v] - 1
			}
			byPart[p] = append(byPart[p], jobNode{group: v - 1, warmFrom: warm, distance: mst.Cost[v]})
		}
		ids := make([]int, 0, len(byPart))
		for id := range byPart {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			schedules = append(schedules, byPart[id])
		}
	}

	// Run the schedules concurrently, one goroutine per part.
	gopts := cfg.Grape
	gopts.Segments = SegmentsFor(size)
	if workers > 1 && gopts.Parallel == 0 {
		// Group-level parallelism already saturates the cores; per-segment
		// workers inside each GRAPE evaluation would only oversubscribe.
		gopts.Parallel = -1
	}
	sopts := cfg.searchFor(size)

	trained := make([]*pulse.Pulse, len(class))
	durations := make([]float64, len(class))
	var trainedMu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, len(schedules))
	for _, sched := range schedules {
		wg.Add(1)
		go func(jobs []jobNode) {
			defer wg.Done()
			warmTol := similarity.WarmThreshold(cfg.Similarity, sys.Dim)
			for _, job := range jobs {
				var seed *pulse.Pulse
				jobSopts := sopts
				if job.warmFrom >= 0 {
					trainedMu.Lock()
					jobSopts.HintDuration = durations[job.warmFrom]
					if job.distance <= warmTol {
						seed = trained[job.warmFrom]
					}
					trainedMu.Unlock()
				}
				res, cerr := grape.CompileBinarySearch(sys, us[job.group], gopts, jobSopts, seed)
				st := GroupStat{Key: class[job.group].Key, NumQubits: size}
				if job.warmFrom >= 0 {
					st.WarmFrom = class[job.warmFrom].Key
				}
				if cerr != nil {
					mu.Lock()
					out.Stats.Failed = append(out.Stats.Failed, class[job.group].Key)
					out.Stats.PerGroup = append(out.Stats.PerGroup, st)
					mu.Unlock()
					continue
				}
				trainedMu.Lock()
				trained[job.group] = res.Pulse
				durations[job.group] = res.Duration
				trainedMu.Unlock()
				st.Iterations = res.TotalIterations
				st.LatencyNs = res.Duration
				st.Converged = true
				mu.Lock()
				out.Stats.TotalIterations += res.TotalIterations
				out.Stats.PerGroup = append(out.Stats.PerGroup, st)
				out.Library.Entries[class[job.group].Key] = &Entry{
					Key:        class[job.group].Key,
					NumQubits:  size,
					Pulse:      res.Pulse,
					LatencyNs:  res.Duration,
					Iterations: res.TotalIterations,
					Frequency:  class[job.group].Count,
					Infidelity: res.Infidelity,
				}
				mu.Unlock()
			}
		}(sched)
	}
	wg.Wait()
	close(errCh)
	for e := range errCh {
		if e != nil {
			return e
		}
	}
	return nil
}
