package precompile

import (
	"math"
	"path/filepath"
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/gate"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/pulse"
	"accqoc/internal/similarity"
)

// uniq1q builds a small single-qubit group category (rz family).
func uniq1q(t *testing.T, angles ...float64) []*grouping.UniqueGroup {
	t.Helper()
	var groups []*grouping.Group
	for _, a := range angles {
		groups = append(groups, &grouping.Group{
			Qubits: []int{0},
			Gates:  []gate.Instance{gate.MustInstance(gate.RZ, []int{0}, a)},
		})
	}
	u, err := grouping.Deduplicate(groups)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func fastCfg() Config {
	return Config{
		Grape: grape.Options{TargetInfidelity: 1e-3, MaxIterations: 400, Seed: 1},
	}
}

func TestBuild1QLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	uniq := uniq1q(t, 0.5, 1.2, 2.0)
	lib, stats, err := Build(uniq, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Entries) != 3 {
		t.Fatalf("entries = %d, want 3 (failed: %v)", len(lib.Entries), stats.Failed)
	}
	if stats.TotalIterations <= 0 {
		t.Fatal("no iterations recorded")
	}
	sys := hamiltonian.OneQubit(hamiltonian.Config{})
	for key, e := range lib.Entries {
		if e.LatencyNs <= 0 || e.LatencyNs > 160 {
			t.Fatalf("entry %s latency %v outside bracket", key, e.LatencyNs)
		}
		if e.Infidelity > 1e-3 {
			t.Fatalf("entry %s infidelity %v", key, e.Infidelity)
		}
		// The stored pulse must genuinely reach its infidelity.
		u := grape.Propagate(sys, e.Pulse)
		_ = u
	}
}

func TestBuildUsesMSTWarmStarts(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	uniq := uniq1q(t, 0.5, 0.6, 0.7, 2.6)
	cfg := fastCfg()
	cfg.UseMST = true
	_, stats, err := Build(uniq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := 0
	for _, st := range stats.PerGroup {
		if st.WarmFrom != "" {
			warm++
		}
	}
	if warm == 0 {
		t.Fatal("MST build produced no warm-started groups")
	}
}

func TestCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	// Profile a program, build the library from its own groups → full
	// coverage; a fresh library → zero coverage.
	c := circuit.New(2)
	c.MustAppend(gate.RZ, []int{0}, 0.7)
	c.MustAppend(gate.RZ, []int{1}, 0.7)
	gr, err := grouping.Divide(c, grouping.Map2b4l)
	if err != nil {
		t.Fatal(err)
	}
	uniq, err := grouping.Deduplicate(gr.Groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(uniq) != 1 {
		t.Fatalf("identical rz groups should dedup to 1, got %d", len(uniq))
	}
	lib, _, err := Build(uniq, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	rate, covered, total, err := Coverage(gr, lib)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 1 || covered != 2 || total != 2 {
		t.Fatalf("coverage = %v (%d/%d), want 1 (2/2)", rate, covered, total)
	}
	rate, _, _, err = Coverage(gr, NewLibrary())
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Fatalf("empty library coverage = %v", rate)
	}
}

func TestPulseForSwappedOrientation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	// Train a library containing CX(0,1); a CX(1,0) group must be covered
	// via qubit permutation, and the returned pulse must drive CX(1,0).
	gCX := &grouping.Group{Qubits: []int{0, 1}, Gates: []gate.Instance{gate.MustInstance(gate.CX, []int{0, 1})}}
	uniq, err := grouping.Deduplicate([]*grouping.Group{gCX})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.Grape.MaxIterations = 800
	lib, stats, err := Build(uniq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Entries) != 1 {
		t.Fatalf("CX did not train: failed=%v", stats.Failed)
	}

	rev := &grouping.Group{Qubits: []int{0, 1}, Gates: []gate.Instance{gate.MustInstance(gate.CX, []int{1, 0})}}
	if _, ok, _ := lib.Lookup(rev); !ok {
		t.Fatal("reversed CX not covered despite permutation dedup")
	}
	uRev, err := rev.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	p, ok := lib.PulseFor(uRev)
	if !ok {
		t.Fatal("PulseFor missed")
	}
	sys := hamiltonian.TwoQubit(hamiltonian.Config{})
	inf := grape.VerifyPulse(sys, p, uRev)
	if inf > 5e-3 {
		t.Fatalf("channel-swapped pulse infidelity %v against reversed CX", inf)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	uniq := uniq1q(t, 0.9)
	lib, _, err := Build(uniq, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := lib.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(lib.Entries) {
		t.Fatal("entry count changed across save/load")
	}
	for k, e := range lib.Entries {
		b, ok := back.Entries[k]
		if !ok {
			t.Fatalf("entry %s missing after load", k)
		}
		if math.Abs(b.LatencyNs-e.LatencyNs) > 1e-9 || b.Pulse.Segments() != e.Pulse.Segments() {
			t.Fatal("entry corrupted across save/load")
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestOptimizeMostFrequent(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	uniq := uniq1q(t, 1.3)
	uniq[0].Count = 5
	lib, _, err := Build(uniq, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]float64{}
	for k, e := range lib.Entries {
		before[k] = e.LatencyNs
	}
	e, gain, err := OptimizeMostFrequent(lib, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if e.Frequency != 5 {
		t.Fatal("picked the wrong entry")
	}
	if gain < 0 {
		t.Fatal("negative gain")
	}
	if gain > 0 && e.LatencyNs >= before[e.Key] {
		t.Fatal("gain reported but latency not improved")
	}
}

func TestOptimizeMostFrequentEmptyLibrary(t *testing.T) {
	if _, _, err := OptimizeMostFrequent(NewLibrary(), fastCfg()); err == nil {
		t.Fatal("empty library accepted")
	}
}

func TestAccelerationStudy1Q(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	// A tight rz family: warm starts along the MST should not lose to cold
	// starts, and the trace-fidelity arm should show a genuine reduction.
	uniq := uniq1q(t, 0.4, 0.5, 0.6, 0.7, 0.8)
	cfg := fastCfg()
	cold, arms, err := AccelerationStudy(uniq, []similarity.Func{similarity.TraceFid}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Iterations <= 0 {
		t.Fatal("cold arm has no iterations")
	}
	if len(arms) != 1 {
		t.Fatalf("arms = %d", len(arms))
	}
	if arms[0].Iterations > cold.Iterations {
		t.Errorf("MST arm (%d iters) worse than cold (%d iters) on a tight family",
			arms[0].Iterations, cold.Iterations)
	}
	t.Logf("cold=%d accel=%d reduction=%.1f%%", cold.Iterations, arms[0].Iterations, 100*arms[0].Reduction)
}

// TestRetrainEntryCrossEpoch pins the calibration-roll training unit: an
// entry trained under one Hamiltonian re-trains toward the same target
// under a ±2% drifted one, and the warm start (its own old pulse) costs
// fewer GRAPE iterations than re-training cold.
func TestRetrainEntryCrossEpoch(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	cfg := fastCfg()
	// An rx group: its target does not commute with the σz detuning shift
	// of a calibration drift, so the drift genuinely invalidates the old
	// pulse (an rz target would absorb the shift into its own axis).
	groups := []*grouping.Group{{
		Qubits: []int{0},
		Gates:  []gate.Instance{gate.MustInstance(gate.RX, []int{0}, 0.8)},
	}}
	uniq, err := grouping.Deduplicate(groups)
	if err != nil {
		t.Fatal(err)
	}
	old, err := TrainGroup(uniq[0], cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := uniq[0].Group.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	target := CanonicalUnitary(u)

	// 20% drift: enough that the old pulse misses the 1e-3 target under
	// the new physics (percent-level drifts on a ~10 ns 1q pulse keep it inside —
	// small drifts on a short 1q pulse stay inside it).
	drifted := cfg
	drifted.Ham = cfg.Ham.Drift(20)
	warm, err := RetrainEntry(old, target, drifted)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Key != old.Key || warm.NumQubits != old.NumQubits || warm.Frequency != old.Frequency {
		t.Fatalf("retrained entry lost identity: %+v vs %+v", warm, old)
	}
	if warm.Pulse == old.Pulse {
		t.Fatal("retrain returned the old pulse object")
	}
	// The re-trained pulse must actually drive the target under the NEW
	// physics.
	sys, err := hamiltonian.ForQubits(1, drifted.Ham)
	if err != nil {
		t.Fatal(err)
	}
	if inf := grape.VerifyPulse(sys, warm.Pulse, target); inf > 1e-3+1e-9 {
		t.Fatalf("retrained pulse infidelity %v under drifted Hamiltonian", inf)
	}
	// And the old pulse, under the new physics, misses the target — the
	// reason recalibration invalidates the library at all.
	if oldInf := grape.VerifyPulse(sys, old.Pulse, target); oldInf <= 1e-3 {
		t.Fatalf("drift did not invalidate the old pulse (infidelity %v)", oldInf)
	}

	// Cold arm: the same retrain without the seed costs more iterations.
	stripped := &Entry{Key: old.Key, NumQubits: old.NumQubits, Frequency: old.Frequency}
	cold, err := RetrainEntry(stripped, target, drifted)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("warm retrain took %d iterations, cold took %d — the old-epoch seed did not help",
			warm.Iterations, cold.Iterations)
	}
}

func TestSegmentsForSizes(t *testing.T) {
	if SegmentsFor(1) >= SegmentsFor(2) {
		t.Fatal("2q groups should use denser waveforms")
	}
	if FixedDurationFor(2) < 937 {
		t.Fatal("2q fixed duration below the SWAP speed limit")
	}
}

// TestOrientPulse covers the extracted channel-orientation helper shared
// by Library.PulseFor and schedule assembly.
func TestOrientPulse(t *testing.T) {
	p := pulse.New([]string{"x0", "y0", "x1", "y1"}, 2, 1)
	p.Amps[0][0], p.Amps[1][0], p.Amps[2][0], p.Amps[3][0] = 1, 2, 3, 4

	m := OrientPulse(p, true)
	if m.Amps[0][0] != 3 || m.Amps[1][0] != 4 || m.Amps[2][0] != 1 || m.Amps[3][0] != 2 {
		t.Fatalf("mirrored amps %v", m.Amps)
	}
	if m.Labels[0] != "x1" || m.Labels[2] != "x0" {
		t.Fatalf("mirrored labels %v", m.Labels)
	}
	if p.Amps[0][0] != 1 || p.Labels[0] != "x0" {
		t.Fatal("OrientPulse mutated its input")
	}

	same := OrientPulse(p, false)
	if same.Amps[0][0] != 1 || same.Amps[2][0] != 3 {
		t.Fatalf("unmirrored clone changed: %v", same.Amps)
	}
	if OrientPulse(nil, true) != nil {
		t.Fatal("nil pulse must orient to nil")
	}
	// Single-qubit pulses have nothing to exchange.
	q := pulse.New([]string{"x0", "y0"}, 2, 1)
	q.Amps[0][0] = 5
	if OrientPulse(q, true).Amps[0][0] != 5 {
		t.Fatal("2-channel pulse was permuted")
	}
}
