package precompile

import (
	"fmt"
	"time"

	"accqoc/internal/cmat"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/pulse"
)

// TrainGroup trains a single unique group in isolation — the unit of work
// behind the serving path, where groups arrive one at a time from
// concurrent requests rather than as a batch category. The optional seed
// entry warm-starts the optimizer and brackets the latency search (its
// latency becomes the binary-search hint). A nil return error with a nil
// entry never happens: failure to converge within the bracket is an error
// so callers can price the group gate-based.
func TrainGroup(g *grouping.UniqueGroup, cfg Config, seed *Entry) (*Entry, error) {
	cfg = cfg.withDefaults()
	sys, err := hamiltonian.ForQubits(g.NumQubits, cfg.Ham)
	if err != nil {
		return nil, err
	}
	u, err := g.Group.Unitary()
	if err != nil {
		return nil, err
	}
	cu := canonicalUnitary(u)

	gopts := cfg.Grape
	gopts.Segments = SegmentsFor(g.NumQubits)
	sopts := cfg.searchFor(g.NumQubits)
	var seedPulse *pulse.Pulse
	if seed != nil && seed.NumQubits == g.NumQubits {
		seedPulse = seed.Pulse
		sopts.HintDuration = seed.LatencyNs
	}
	begin := time.Now()
	res, err := grape.CompileBinarySearch(sys, cu, gopts, sopts, seedPulse)
	wall := time.Since(begin)
	if err != nil {
		return nil, fmt.Errorf("precompile: group %s unreachable in bracket: %w", g.Key, err)
	}
	if cfg.Observer != nil {
		cfg.Observer(g.NumQubits, res.TotalIterations, res.Infidelity, seedPulse != nil)
	}
	return &Entry{
		Key:         g.Key,
		NumQubits:   g.NumQubits,
		Pulse:       res.Pulse,
		LatencyNs:   res.Duration,
		Iterations:  res.TotalIterations,
		Frequency:   g.Count,
		Infidelity:  res.Infidelity,
		TrainWallNs: float64(wall.Nanoseconds()),
		Seeded:      seedPulse != nil,
	}, nil
}

// RetrainEntry re-trains a library entry toward target unitary u under a
// new physical model (cfg carries a fresh calibration epoch's Hamiltonian)
// — the unit of work of the cross-epoch recompilation pipeline. The old
// entry's pulse warm-starts the optimizer and its latency brackets the
// binary search at the pulse's native duration, so a small calibration
// drift converges in a handful of iterations (the paper's warm-start
// thesis applied across recalibrations). An entry whose Pulse is nil
// retrains cold — the baseline the warm path is measured against.
func RetrainEntry(e *Entry, u *cmat.Matrix, cfg Config) (*Entry, error) {
	cfg = cfg.withDefaults()
	sys, err := hamiltonian.ForQubits(e.NumQubits, cfg.Ham)
	if err != nil {
		return nil, err
	}
	gopts := cfg.Grape
	gopts.Segments = SegmentsFor(e.NumQubits)
	sopts := cfg.searchFor(e.NumQubits)
	if e.Pulse != nil && e.LatencyNs > 0 {
		sopts.HintDuration = e.LatencyNs
	}
	begin := time.Now()
	res, err := grape.CompileBinarySearch(sys, u, gopts, sopts, e.Pulse)
	wall := time.Since(begin)
	if err != nil {
		return nil, fmt.Errorf("precompile: retrain %s unreachable in bracket: %w", e.Key, err)
	}
	if cfg.Observer != nil {
		cfg.Observer(e.NumQubits, res.TotalIterations, res.Infidelity, e.Pulse != nil)
	}
	return &Entry{
		Key:         e.Key,
		NumQubits:   e.NumQubits,
		Pulse:       res.Pulse,
		LatencyNs:   res.Duration,
		Iterations:  res.TotalIterations,
		Frequency:   e.Frequency,
		Infidelity:  res.Infidelity,
		TrainWallNs: float64(wall.Nanoseconds()),
		Seeded:      e.Pulse != nil,
	}, nil
}

// Merge copies every entry of other into l, overwriting on key collision.
// Library itself is not safe for concurrent use — serving paths should go
// through libstore.Store, which wraps a Library snapshot behind sharded
// locks.
func (l *Library) Merge(other *Library) {
	if other == nil {
		return
	}
	for k, e := range other.Entries {
		l.Entries[k] = e
	}
}

// Clone returns a shallow copy of the library: a fresh entry map sharing
// the (immutable-by-convention) entries.
func (l *Library) Clone() *Library {
	out := NewLibrary()
	out.Merge(l)
	return out
}

// Keys computes the stable canonical key of every group occurrence in a
// grouping, in occurrence order. Keys are content addresses: two groups
// share a key iff their unitaries match under the paper's §IV-C
// equivalence (global phase, and qubit order for two-qubit groups).
func Keys(gr *grouping.Grouping) ([]string, error) {
	keys := make([]string, len(gr.Groups))
	for i, g := range gr.Groups {
		k, err := g.Key()
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	return keys, nil
}
