package precompile

import (
	"testing"

	"accqoc/internal/gate"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
)

func TestParallelBuildMatchesSerialCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	uniq := uniq1q(t, 0.4, 0.9, 1.4, 2.1)
	cfg := fastCfg()
	cfg.UseMST = true

	serialLib, _, err := Build(uniq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelBuild(uniq, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Library.Entries) != len(serialLib.Entries) {
		t.Fatalf("parallel build trained %d entries, serial %d",
			len(par.Library.Entries), len(serialLib.Entries))
	}
	for key := range serialLib.Entries {
		if _, ok := par.Library.Entries[key]; !ok {
			t.Fatalf("parallel build missing key %.24s…", key)
		}
	}
	if par.Workers != 2 {
		t.Fatal("worker count not recorded")
	}
	if par.PartMakespan <= 0 || par.SerialWeight <= 0 {
		t.Fatalf("partition accounting missing: %+v", par)
	}
	if par.PartMakespan > par.SerialWeight {
		t.Fatal("makespan exceeds serial weight")
	}
}

func TestParallelBuildSingleWorkerAndSingleGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	uniq := uniq1q(t, 1.0)
	par, err := ParallelBuild(uniq, fastCfg(), 0) // clamped to 1
	if err != nil {
		t.Fatal(err)
	}
	if par.Workers != 1 || len(par.Library.Entries) != 1 {
		t.Fatalf("single-group build: %+v", par)
	}
}

func TestParallelBuildPulsesAreValid(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	uniq := uniq1q(t, 0.6, 1.1)
	par, err := ParallelBuild(uniq, fastCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	sys := hamiltonian.OneQubit(hamiltonian.Config{})
	for _, u := range uniq {
		e, ok := par.Library.Entries[u.Key]
		if !ok {
			t.Fatalf("entry missing for %.24s…", u.Key)
		}
		target, err := u.Group.Unitary()
		if err != nil {
			t.Fatal(err)
		}
		if inf := grape.VerifyPulse(sys, e.Pulse, CanonicalUnitary(target)); inf > 5e-3 {
			t.Fatalf("parallel-trained pulse infidelity %v", inf)
		}
	}
}

func TestParallelBuildMixedSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	groups := []*grouping.Group{
		{Qubits: []int{0}, Gates: []gate.Instance{gate.MustInstance(gate.RZ, []int{0}, 0.8)}},
		{Qubits: []int{0, 1}, Gates: []gate.Instance{gate.MustInstance(gate.CX, []int{0, 1})}},
	}
	uniq, err := grouping.Deduplicate(groups)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.Grape = grape.Options{TargetInfidelity: 1e-2, MaxIterations: 400, Seed: 2}
	par, err := ParallelBuild(uniq, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Library.Entries) != 2 {
		t.Fatalf("mixed-size build trained %d of 2 (failed: %v)",
			len(par.Library.Entries), par.Stats.Failed)
	}
}
