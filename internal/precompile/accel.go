package precompile

import (
	"fmt"
	"sort"

	"accqoc/internal/cmat"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/pulse"
	"accqoc/internal/simgraph"
	"accqoc/internal/similarity"
)

// AccelArm is one arm of the accelerated-training study (Fig. 8/13): the
// total GRAPE iterations to compile a group category under one ordering.
type AccelArm struct {
	Function   similarity.Func // "" for the cold baseline
	Iterations int
	// Reduction is 1 − Iterations/cold, filled by AccelerationStudy.
	Reduction float64
}

// FixedDurationFor returns the per-size pulse duration used by the
// acceleration study. Durations are chosen above the model's worst-case
// speed limit for the size (a SWAP-class two-qubit unitary needs ≈ 937 ns)
// so that iteration counts compare orderings, not feasibility.
func FixedDurationFor(numQubits int) float64 {
	switch numQubits {
	case 1:
		return 100
	case 2:
		return 1100
	default:
		return 1100 * float64(numQubits-1)
	}
}

// AccelerationStudy trains every unique group once per arm — a cold
// baseline plus one arm per similarity function, each ordered by that
// function's MST with warm starts along tree edges — and reports the total
// iteration counts. This regenerates the data behind the paper's Figures 8
// and 13.
func AccelerationStudy(uniq []*grouping.UniqueGroup, fns []similarity.Func, cfg Config) (cold AccelArm, arms []AccelArm, err error) {
	cfg = cfg.withDefaults()
	bySize := map[int][]*grouping.UniqueGroup{}
	for _, u := range uniq {
		bySize[u.NumQubits] = append(bySize[u.NumQubits], u)
	}
	sizes := make([]int, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)

	type class struct {
		size int
		sys  *hamiltonian.System
		us   []*cmat.Matrix
	}
	var classes []class
	for _, size := range sizes {
		sys, serr := hamiltonian.ForQubits(size, cfg.Ham)
		if serr != nil {
			return cold, nil, serr
		}
		us := make([]*cmat.Matrix, len(bySize[size]))
		for i, g := range bySize[size] {
			u, uerr := g.Group.Unitary()
			if uerr != nil {
				return cold, nil, uerr
			}
			us[i] = canonicalUnitary(u)
		}
		classes = append(classes, class{size: size, sys: sys, us: us})
	}

	// run trains every class in the given order; fn ("" for the cold arm)
	// gates warm starts by its similarity threshold — a too-distant MST
	// parent would hurt rather than help (§V-C's identity fallback).
	run := func(fn similarity.Func, order func(c class) ([]simgraph.Step, error)) (int, error) {
		total := 0
		for _, c := range classes {
			steps, oerr := order(c)
			if oerr != nil {
				return 0, oerr
			}
			gopts := cfg.Grape
			gopts.Segments = SegmentsFor(c.size)
			dur := FixedDurationFor(c.size)
			trained := make([]*pulse.Pulse, len(c.us))
			for _, step := range steps {
				var seed *pulse.Pulse
				if step.WarmFrom >= 0 && trained[step.WarmFrom] != nil &&
					fn != "" && step.Distance <= similarity.WarmThreshold(fn, c.sys.Dim) {
					seed = trained[step.WarmFrom]
				}
				res, cerr := grape.Compile(c.sys, c.us[step.Group], dur, gopts, seed)
				if cerr != nil {
					return 0, cerr
				}
				total += res.Iterations
				if res.Converged {
					trained[step.Group] = res.Pulse
				}
			}
		}
		return total, nil
	}

	coldIters, err := run("", func(c class) ([]simgraph.Step, error) {
		return simgraph.ColdSequence(len(c.us)), nil
	})
	if err != nil {
		return cold, nil, err
	}
	cold = AccelArm{Function: "", Iterations: coldIters}

	for _, fn := range fns {
		iters, rerr := run(fn, func(c class) ([]simgraph.Step, error) {
			if len(c.us) == 1 {
				return simgraph.ColdSequence(1), nil
			}
			g, gerr := simgraph.Build(c.us, fn)
			if gerr != nil {
				return nil, gerr
			}
			mst, merr := g.PrimMST(0)
			if merr != nil {
				return nil, merr
			}
			return mst.CompilationSequence(), nil
		})
		if rerr != nil {
			return cold, nil, rerr
		}
		arm := AccelArm{Function: fn, Iterations: iters}
		if coldIters > 0 {
			arm.Reduction = 1 - float64(iters)/float64(coldIters)
		}
		arms = append(arms, arm)
	}
	return cold, arms, nil
}

// String renders an arm for reports.
func (a AccelArm) String() string {
	name := string(a.Function)
	if name == "" {
		name = "cold"
	}
	return fmt.Sprintf("%-10s iterations=%d reduction=%.1f%%", name, a.Iterations, 100*a.Reduction)
}
