// Package precompile implements the paper's static pre-compilation (§IV)
// and similarity-accelerated training (§V): it trains a pulse library for a
// category of deduplicated gate groups with per-group latency binary
// search, orders the training by a Prim MST over the similarity graph so
// every group warm-starts from its most similar predecessor, measures
// coverage of new programs against the library, and re-optimizes the most
// frequent group with a larger budget (§IV-G).
package precompile

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"accqoc/internal/cmat"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/pulse"
	"accqoc/internal/simgraph"
	"accqoc/internal/similarity"
)

// Config tunes library construction. The zero value selects documented
// defaults.
type Config struct {
	// Ham configures the physical model.
	Ham hamiltonian.Config
	// Grape is the base optimizer configuration. Segments is overridden
	// per group size (see SegmentsFor).
	Grape grape.Options
	// Similarity selects the warm-start metric; default TraceFid
	// ("fidelity1"), the function the paper found best (Fig. 8).
	Similarity similarity.Func
	// UseMST orders training by the similarity MST; when false, groups are
	// trained in frequency order from cold starts (the brute-force
	// baseline of Fig. 15's compile-time comparison).
	UseMST bool
	// Search bounds per group size; zero values pick defaults scaled to
	// the model's speed limits.
	Search1Q grape.SearchOptions
	Search2Q grape.SearchOptions
	// Observer, when set, is notified once per successful training
	// (TrainGroup / RetrainEntry) with the group size, summed optimizer
	// iterations, final infidelity, and whether the run was warm-started.
	// Observability taps it for per-size iteration and infidelity
	// histograms; it must be cheap and must not retain references. Nil
	// costs one pointer check per training.
	Observer func(numQubits, iterations int, infidelity float64, seeded bool)
}

func (c Config) withDefaults() Config {
	if c.Similarity == "" {
		c.Similarity = similarity.TraceFid
	}
	if c.Grape.TargetInfidelity == 0 {
		c.Grape.TargetInfidelity = 1e-3
	}
	if c.Grape.MaxIterations == 0 {
		c.Grape.MaxIterations = 600
	}
	if c.Search1Q.MaxDuration == 0 {
		c.Search1Q = grape.SearchOptions{MinDuration: 10, MaxDuration: 160, Resolution: 10}
	}
	if c.Search2Q.MaxDuration == 0 {
		c.Search2Q = grape.SearchOptions{MinDuration: 150, MaxDuration: 1500, Resolution: 50}
	}
	return c
}

// SegmentsFor returns the pulse segment count per group size: two-qubit
// targets need a denser waveform for reliable convergence.
func SegmentsFor(numQubits int) int {
	switch numQubits {
	case 1:
		return 12
	case 2:
		return 32
	default:
		return 40
	}
}

// Entry is one trained library pulse. The cost-provenance fields
// (TrainWallNs, Seeded, Hits) are zero-valued on entries predating them,
// so old snapshots decode unchanged (gob and omitempty both skip zeros).
type Entry struct {
	Key        string       `json:"key"`
	NumQubits  int          `json:"num_qubits"`
	Pulse      *pulse.Pulse `json:"pulse"`
	LatencyNs  float64      `json:"latency_ns"`
	Iterations int          `json:"iterations"` // training cost
	Frequency  int          `json:"frequency"`  // occurrences during profiling
	Infidelity float64      `json:"infidelity"`
	// TrainWallNs is the wall-clock time the training that produced this
	// pulse spent in the optimizer (binary search included).
	TrainWallNs float64 `json:"train_wall_ns,omitempty"`
	// Seeded records whether that training warm-started from a seed pulse.
	Seeded bool `json:"seeded,omitempty"`
	// Hits carries the per-entry lookup count across snapshot save/load —
	// the store's live counter is authoritative while the entry is
	// resident (see libstore.Store.SnapshotWithHits).
	Hits int64 `json:"hits,omitempty"`
}

// Library is a pulse cache keyed by canonical group matrix.
type Library struct {
	Entries map[string]*Entry `json:"entries"`
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{Entries: map[string]*Entry{}} }

// Lookup returns the entry for a group, if covered.
func (l *Library) Lookup(g *grouping.Group) (*Entry, bool, error) {
	key, err := g.Key()
	if err != nil {
		return nil, false, err
	}
	e, ok := l.Entries[key]
	return e, ok, nil
}

// PulseFor returns the pulse driving the given unitary: the stored
// canonical pulse, with per-qubit control channels exchanged when the
// group's orientation is the mirror of the canonical one. Callers that
// already hold the occurrence's canonical key and orientation flag (the
// key pass of accqoc.PlanGroups) should look the entry up directly and
// use OrientPulse — this method pays a fresh orientation search.
func (l *Library) PulseFor(u *cmat.Matrix) (*pulse.Pulse, bool) {
	key, swapped := grouping.CanonicalOrientation(u)
	e, ok := l.Entries[key]
	if !ok {
		return nil, false
	}
	return OrientPulse(e.Pulse, swapped), true
}

// OrientPulse returns the channel-correct waveform for one occurrence of
// a library pulse: a clone, with the per-qubit drive channels exchanged
// when the occurrence mirrors the canonical orientation. Nil-safe.
func OrientPulse(p *pulse.Pulse, mirrored bool) *pulse.Pulse {
	if p == nil {
		return nil
	}
	out := p.Clone()
	if mirrored && out.Channels() == 4 {
		// Channels are x0,y0,x1,y1: exchange qubit 0 and 1 drives.
		out.Amps[0], out.Amps[2] = out.Amps[2], out.Amps[0]
		out.Amps[1], out.Amps[3] = out.Amps[3], out.Amps[1]
		out.Labels[0], out.Labels[2] = out.Labels[2], out.Labels[0]
		out.Labels[1], out.Labels[3] = out.Labels[3], out.Labels[1]
	}
	return out
}

// GroupStat records one training step for reporting.
type GroupStat struct {
	Key        string
	NumQubits  int
	Iterations int
	LatencyNs  float64
	WarmFrom   string // canonical key of the warm-start source, "" for identity
	Converged  bool
}

// BuildStats summarizes a library build.
type BuildStats struct {
	TotalIterations int
	Elapsed         time.Duration
	PerGroup        []GroupStat
	Failed          []string // keys that never converged (excluded from the library)
}

// Build trains pulses for every unique group, ordered (when cfg.UseMST) by
// the similarity MST per size class with warm starts along tree edges.
func Build(uniq []*grouping.UniqueGroup, cfg Config) (*Library, *BuildStats, error) {
	cfg = cfg.withDefaults()
	lib := NewLibrary()
	stats := &BuildStats{}
	start := time.Now()

	bySize := map[int][]*grouping.UniqueGroup{}
	for _, u := range uniq {
		bySize[u.NumQubits] = append(bySize[u.NumQubits], u)
	}
	sizes := make([]int, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)

	for _, size := range sizes {
		class := bySize[size]
		if err := buildClass(lib, stats, class, size, cfg); err != nil {
			return nil, nil, err
		}
	}
	stats.Elapsed = time.Since(start)
	return lib, stats, nil
}

func buildClass(lib *Library, stats *BuildStats, class []*grouping.UniqueGroup, size int, cfg Config) error {
	sys, err := hamiltonian.ForQubits(size, cfg.Ham)
	if err != nil {
		return err
	}
	// Canonical unitaries per unique group.
	us := make([]*cmat.Matrix, len(class))
	for i, g := range class {
		u, err := g.Group.Unitary()
		if err != nil {
			return err
		}
		us[i] = canonicalUnitary(u)
	}

	var steps []simgraph.Step
	if cfg.UseMST && len(class) > 1 {
		g, err := simgraph.Build(us, cfg.Similarity)
		if err != nil {
			return err
		}
		mst, err := g.PrimMST(0)
		if err != nil {
			return err
		}
		steps = mst.CompilationSequence()
	} else {
		steps = simgraph.ColdSequence(len(class))
	}

	sopts := cfg.searchFor(size)
	gopts := cfg.Grape
	gopts.Segments = SegmentsFor(size)

	trained := make([]*pulse.Pulse, len(class))
	durations := make([]float64, len(class))
	warmTol := similarity.WarmThreshold(cfg.Similarity, sys.Dim)
	for _, step := range steps {
		var seed *pulse.Pulse
		warmKey := ""
		stepSopts := sopts
		if step.WarmFrom >= 0 && trained[step.WarmFrom] != nil {
			// The latency hint transfers even between moderately similar
			// groups; the pulse seed only when the MST edge is short
			// enough to help (§V-C's identity fallback).
			stepSopts.HintDuration = durations[step.WarmFrom]
			if step.Distance <= warmTol {
				seed = trained[step.WarmFrom]
				warmKey = class[step.WarmFrom].Key
			}
		}
		res, err := grape.CompileBinarySearch(sys, us[step.Group], gopts, stepSopts, seed)
		st := GroupStat{
			Key:       class[step.Group].Key,
			NumQubits: size,
			WarmFrom:  warmKey,
		}
		if err != nil {
			// Unreachable within the bracket: record and continue; the
			// group stays uncovered and compiles dynamically later.
			stats.Failed = append(stats.Failed, class[step.Group].Key)
			stats.PerGroup = append(stats.PerGroup, st)
			continue
		}
		trained[step.Group] = res.Pulse
		durations[step.Group] = res.Duration
		st.Iterations = res.TotalIterations
		st.LatencyNs = res.Duration
		st.Converged = true
		stats.TotalIterations += res.TotalIterations
		stats.PerGroup = append(stats.PerGroup, st)
		lib.Entries[class[step.Group].Key] = &Entry{
			Key:        class[step.Group].Key,
			NumQubits:  size,
			Pulse:      res.Pulse,
			LatencyNs:  res.Duration,
			Iterations: res.TotalIterations,
			Frequency:  class[step.Group].Count,
			Infidelity: res.Infidelity,
		}
	}
	return nil
}

// SearchFor returns the binary-search bracket for a group size under this
// configuration.
func (c Config) SearchFor(size int) grape.SearchOptions {
	return c.withDefaults().searchFor(size)
}

func (c Config) searchFor(size int) grape.SearchOptions {
	switch size {
	case 1:
		return c.Search1Q
	default:
		s := c.Search2Q
		if size > 2 {
			// Larger groups hold proportionally more entangling content.
			s.MaxDuration *= float64(size - 1)
			s.Resolution *= 2
		}
		return s
	}
}

// CanonicalUnitary returns the orientation whose key is canonical, so that
// library pulses always drive the canonical form.
func CanonicalUnitary(u *cmat.Matrix) *cmat.Matrix {
	return canonicalUnitary(u)
}

// canonicalUnitary returns the orientation whose key is canonical, so that
// library pulses always drive the canonical form.
func canonicalUnitary(u *cmat.Matrix) *cmat.Matrix {
	if _, swapped := grouping.CanonicalOrientation(u); swapped {
		return swapQubits(u)
	}
	return u
}

func swapQubits(u *cmat.Matrix) *cmat.Matrix {
	s := cmat.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
	})
	return cmat.MulChain(s, u, s)
}

// Coverage reports which fraction of a program's group occurrences the
// library already covers (§V-A):
//
//	Coverage Rate = #groups covered / #groups of the program.
func Coverage(gr *grouping.Grouping, lib *Library) (rate float64, covered, total int, err error) {
	total = len(gr.Groups)
	if total == 0 {
		return 1, 0, 0, nil
	}
	for _, g := range gr.Groups {
		_, ok, kerr := lib.Lookup(g)
		if kerr != nil {
			return 0, 0, 0, kerr
		}
		if ok {
			covered++
		}
	}
	return float64(covered) / float64(total), covered, total, nil
}

// OptimizeMostFrequent retrains the highest-frequency entry with an
// enlarged budget — more restarts, a finer latency search — and keeps the
// better pulse (§IV-G). It returns the entry and the latency improvement
// in nanoseconds (0 when no improvement was found).
func OptimizeMostFrequent(lib *Library, cfg Config) (*Entry, float64, error) {
	cfg = cfg.withDefaults()
	var target *Entry
	for _, e := range lib.Entries {
		if target == nil || e.Frequency > target.Frequency ||
			(e.Frequency == target.Frequency && e.Key < target.Key) {
			target = e
		}
	}
	if target == nil {
		return nil, 0, fmt.Errorf("precompile: empty library")
	}
	sys, err := hamiltonian.ForQubits(target.NumQubits, cfg.Ham)
	if err != nil {
		return nil, 0, err
	}
	// Recover the trained unitary from the stored pulse.
	u := grape.Propagate(sys, target.Pulse)
	gopts := cfg.Grape
	gopts.Segments = SegmentsFor(target.NumQubits)
	gopts.MaxIterations *= 2
	gopts.Restarts = 4
	sopts := cfg.searchFor(target.NumQubits)
	sopts.Resolution /= 2
	sopts.MaxDuration = target.LatencyNs // only look below the current latency
	res, err := grape.CompileBinarySearch(sys, u, gopts, sopts, target.Pulse)
	if err != nil || !res.Converged || res.Duration >= target.LatencyNs {
		return target, 0, nil // keep the existing pulse
	}
	gain := target.LatencyNs - res.Duration
	target.Pulse = res.Pulse
	target.LatencyNs = res.Duration
	target.Infidelity = res.Infidelity
	return target, gain, nil
}

// Save writes the library as JSON.
func (l *Library) Save(path string) error {
	data, err := json.MarshalIndent(l, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a library written by Save.
func Load(path string) (*Library, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	l := NewLibrary()
	if err := json.Unmarshal(data, l); err != nil {
		return nil, fmt.Errorf("precompile: corrupt library %s: %w", path, err)
	}
	return l, nil
}
