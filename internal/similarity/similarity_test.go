package similarity

import (
	"math"
	"math/rand"
	"testing"

	"accqoc/internal/cmat"
	"accqoc/internal/gate"
)

func gU(t *testing.T, n gate.Name, params ...float64) *cmat.Matrix {
	t.Helper()
	u, err := gate.Unitary(n, params)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestSelfDistanceIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := cmat.RandomUnitary(rng, 4)
	for _, f := range []Func{L1, L2, TraceFid, UhlmannFid} {
		d, err := Distance(f, u, u)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if d > 1e-8 {
			t.Errorf("%s: self-distance = %v, want ≈ 0", f, d)
		}
	}
}

func TestInverseFidRewardsDissimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := cmat.RandomUnitary(rng, 4)
	dSelf, err := Distance(InverseFid, u, u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dSelf-1) > 1e-8 {
		t.Fatalf("inverse self-distance = %v, want 1 (maximal)", dSelf)
	}
}

func TestSymmetryOfMetricFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := cmat.RandomUnitary(rng, 4)
	b := cmat.RandomUnitary(rng, 4)
	for _, f := range []Func{L1, L2, TraceFid} {
		d1, err1 := Distance(f, a, b)
		d2, err2 := Distance(f, b, a)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Abs(d1-d2) > 1e-10 {
			t.Errorf("%s not symmetric: %v vs %v", f, d1, d2)
		}
	}
}

func TestOrderingCloserAnglesAreCloser(t *testing.T) {
	// rz(1.0) should be closer to rz(1.1) than to rz(2.5) under every
	// genuine similarity function.
	ref := gU(t, gate.RZ, 1.0)
	near := gU(t, gate.RZ, 1.1)
	far := gU(t, gate.RZ, 2.5)
	for _, f := range []Func{L1, L2, TraceFid, UhlmannFid} {
		dn, err := Distance(f, ref, near)
		if err != nil {
			t.Fatal(err)
		}
		df, err := Distance(f, ref, far)
		if err != nil {
			t.Fatal(err)
		}
		if dn >= df {
			t.Errorf("%s: d(near)=%v ≥ d(far)=%v", f, dn, df)
		}
	}
}

func TestTraceFidGlobalPhaseInvariant(t *testing.T) {
	a := gU(t, gate.H)
	b := cmat.Scale(1i, a)
	d, err := Distance(TraceFid, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-10 {
		t.Fatalf("trace fidelity should ignore global phase: %v", d)
	}
}

func TestL1L2RelationToNorms(t *testing.T) {
	a := gU(t, gate.X)
	b := gU(t, gate.I)
	d1, _ := Distance(L1, a, b)
	d2, _ := Distance(L2, a, b)
	// X−I has entries {−1,1,1,−1}: L1 = 4, L2 = 2.
	if math.Abs(d1-4) > 1e-12 || math.Abs(d2-2) > 1e-12 {
		t.Fatalf("d1=%v d2=%v, want 4 and 2", d1, d2)
	}
}

func TestUhlmannPeaksAtEqualUnitaries(t *testing.T) {
	// d4(A, A) ≈ 0 verifies the dagger transcription (see package doc).
	for _, g := range []gate.Name{gate.H, gate.T, gate.CX, gate.Swap} {
		u := gU(t, g)
		d, err := Distance(UhlmannFid, u, u)
		if err != nil {
			t.Fatal(err)
		}
		if d > 1e-8 {
			t.Errorf("%s: d4 self-distance %v", g, d)
		}
	}
}

func TestDistanceValidation(t *testing.T) {
	if _, err := Distance(L1, cmat.Identity(2), cmat.Identity(4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := Distance("bogus", cmat.Identity(2), cmat.Identity(2)); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := Distance(L1, cmat.New(2, 3), cmat.New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestMatrixwise(t *testing.T) {
	ref := gU(t, gate.RZ, 1.0)
	cands := []*cmat.Matrix{
		gU(t, gate.RZ, 2.8),
		gU(t, gate.RZ, 1.05),
		gU(t, gate.RZ, -2.0),
	}
	idx, d, err := Matrixwise(TraceFid, ref, cands)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("best index = %d, want 1", idx)
	}
	if d < 0 || d > 1 {
		t.Fatalf("distance %v out of range", d)
	}
	if _, _, err := Matrixwise(TraceFid, ref, nil); err == nil {
		t.Fatal("empty candidates accepted")
	}
}

func TestAllListsFiveFunctions(t *testing.T) {
	if len(All) != 5 {
		t.Fatalf("All has %d functions, want 5 (paper Fig. 8)", len(All))
	}
}
