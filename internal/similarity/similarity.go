// Package similarity implements the paper's five group-similarity functions
// (§V-B, Fig. 8/13). Every function is exposed as a *distance*: lower means
// more similar, so minimum-spanning-tree construction directly minimizes
// the summed dissimilarity of consecutive compilations.
//
//	d1  — entry-wise L1 difference            Σ|aij−bij|
//	d2  — entry-wise L2 (Frobenius) difference √Σ(aij−bij)²
//	d3  — "fidelity1": trace-overlap distance  1 − |Tr(A†B)|/d
//	d4  — "fidelity2": Uhlmann-style fidelity  1 − |Tr√(√(A†)·B·√(A†))|²/d²
//	d5  — "inverse":  the inversion of d4, the paper's negative control —
//	      it *rewards* dissimilarity and is expected to hurt training.
//
// The paper writes d4 with the density-matrix Uhlmann formula
// (tr√(√A·B·√A))²; applied verbatim to unitaries it peaks at B = A⁻¹
// rather than B = A, so we conjugate the first argument — the natural
// transcription that makes it a similarity measure on unitaries. When the
// principal square root does not exist (eigenvalue pair straddling the
// branch cut), d4 falls back to d3 — both are fidelity-flavored and the
// fallback keeps MST construction total.
package similarity

import (
	"fmt"
	"math"
	"math/cmplx"

	"accqoc/internal/cmat"
)

// Func names a similarity (distance) function.
type Func string

// The paper's five functions in Figure 8/13 order.
const (
	L1         Func = "d1-l1"
	L2         Func = "d2-l2"
	TraceFid   Func = "fidelity1"
	UhlmannFid Func = "fidelity2"
	InverseFid Func = "inverse"
)

// All lists the five functions in the paper's plotting order.
var All = []Func{L1, L2, TraceFid, UhlmannFid, InverseFid}

// Distance returns the dissimilarity of two equally-sized unitaries under
// the chosen function. Lower is more similar. The result is ≥ 0 for all
// functions except InverseFid, whose ordering is intentionally reversed.
func Distance(f Func, a, b *cmat.Matrix) (float64, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, fmt.Errorf("similarity: size mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if !a.IsSquare() {
		return 0, fmt.Errorf("similarity: non-square input %dx%d", a.Rows, a.Cols)
	}
	switch f {
	case L1:
		return cmat.L1Norm(cmat.Sub(a, b)), nil
	case L2:
		return cmat.FrobeniusNorm(cmat.Sub(a, b)), nil
	case TraceFid:
		return traceDistance(a, b), nil
	case UhlmannFid:
		return uhlmannDistance(a, b), nil
	case InverseFid:
		// The negative control: similar pairs get LARGE weights.
		return 1 - uhlmannDistance(a, b), nil
	default:
		return 0, fmt.Errorf("similarity: unknown function %q", f)
	}
}

func traceDistance(a, b *cmat.Matrix) float64 {
	d := float64(a.Rows)
	ov := cmplx.Abs(cmat.Trace(cmat.Mul(cmat.Dagger(a), b))) / d
	if ov > 1 {
		ov = 1 // numerical guard
	}
	return 1 - ov
}

func uhlmannDistance(a, b *cmat.Matrix) float64 {
	sa, err := cmat.Sqrtm(cmat.Dagger(a))
	if err != nil {
		return traceDistance(a, b)
	}
	m := cmat.MulChain(sa, b, sa)
	sm, err := cmat.Sqrtm(m)
	if err != nil {
		return traceDistance(a, b)
	}
	d := float64(a.Rows)
	f := cmplx.Abs(cmat.Trace(sm))
	fid := (f * f) / (d * d)
	if fid > 1 {
		fid = 1
	}
	return 1 - fid
}

// WarmThreshold returns the distance below which a warm start from a
// neighbor is expected to help rather than hurt GRAPE ("if no group is
// similar enough, the compilation will start from the pulse of identity
// matrix" — §V-C). Thresholds are per function because the five measures
// live on different scales; dim is the unitary dimension. InverseFid has
// no threshold (+Inf): it is the paper's negative control and is supposed
// to pick bad seeds.
func WarmThreshold(f Func, dim int) float64 {
	d := float64(dim)
	switch f {
	case L1:
		// Entry-wise L1 between unitaries tops out near 2d^1.5 (2d²
		// entries of magnitude ~1/√d); admit the closest quarter or so.
		return 0.5 * d
	case L2:
		// Frobenius distance between unitaries tops out at 2√d.
		return 0.5 * math.Sqrt(d)
	case TraceFid, UhlmannFid:
		return 0.3
	case InverseFid:
		return math.Inf(1)
	default:
		return 0.3
	}
}

// Matrixwise is a convenience for ranking: it computes the distance from
// one reference to many candidates and returns the index of the most
// similar candidate (lowest distance). Errors if candidates is empty.
func Matrixwise(f Func, ref *cmat.Matrix, candidates []*cmat.Matrix) (int, float64, error) {
	if len(candidates) == 0 {
		return -1, 0, fmt.Errorf("similarity: no candidates")
	}
	bestIdx, bestDist := -1, math.Inf(1)
	for i, c := range candidates {
		d, err := Distance(f, ref, c)
		if err != nil {
			return -1, 0, err
		}
		if d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	return bestIdx, bestDist, nil
}
