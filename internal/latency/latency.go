// Package latency implements the paper's Algorithm 3: dynamic programming
// over a dependency DAG to compute a program's overall latency from
// per-node latencies — for both the group-level DAG (QOC compilation) and
// the gate-level DAG (gate-based compilation baseline).
package latency

import (
	"fmt"

	"accqoc/internal/circuit"
	"accqoc/internal/grouping"
)

// OverallGroups runs Algorithm 3 on a grouping's DAG: each group's finish
// time is the max of its predecessors' finish times plus its own latency;
// the overall latency is the maximum finish time. groupLatency returns the
// pulse duration (ns) of group i.
func OverallGroups(gr *grouping.Grouping, groupLatency func(i int) (float64, error)) (float64, error) {
	n := len(gr.Groups)
	finish := make([]float64, n)
	done := make([]bool, n)
	// Kahn topological traversal — group order is not assumed sorted.
	indeg := make([]int, n)
	for i := range gr.Groups {
		indeg[i] = len(gr.Preds[i])
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	var overall float64
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		processed++
		var start float64
		for _, p := range gr.Preds[cur] {
			if !done[p] {
				return 0, fmt.Errorf("latency: predecessor %d of %d not finished — DAG corrupt", p, cur)
			}
			if finish[p] > start {
				start = finish[p]
			}
		}
		lat, err := groupLatency(cur)
		if err != nil {
			return 0, fmt.Errorf("latency: group %d: %w", cur, err)
		}
		if lat < 0 {
			return 0, fmt.Errorf("latency: negative latency %v for group %d", lat, cur)
		}
		finish[cur] = start + lat
		done[cur] = true
		if finish[cur] > overall {
			overall = finish[cur]
		}
		for _, s := range gr.Succs[cur] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if processed != n {
		return 0, fmt.Errorf("latency: group DAG has a cycle (%d of %d processed)", processed, n)
	}
	return overall, nil
}

// OverallGates runs the same DP over the gate-level DAG with a per-gate
// latency function — the gate-based compilation baseline (§II-C): pulses
// concatenate along the dependency critical path.
func OverallGates(c *circuit.Circuit, gateLatency func(g int) float64) float64 {
	dag := circuit.BuildDAG(c)
	finish := make([]float64, len(c.Gates))
	var overall float64
	for i := range c.Gates { // program order is topological for gate DAGs
		var start float64
		for _, p := range dag.Preds[i] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[i] = start + gateLatency(i)
		if finish[i] > overall {
			overall = finish[i]
		}
	}
	return overall
}

// Schedule returns each group's ASAP start time under Algorithm 3 — useful
// for emitting pulse schedules and for tests that need more than the
// scalar result.
func Schedule(gr *grouping.Grouping, groupLatency func(i int) (float64, error)) (starts []float64, overall float64, err error) {
	n := len(gr.Groups)
	starts = make([]float64, n)
	finish := make([]float64, n)
	indeg := make([]int, n)
	for i := range gr.Groups {
		indeg[i] = len(gr.Preds[i])
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		processed++
		var start float64
		for _, p := range gr.Preds[cur] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		lat, lerr := groupLatency(cur)
		if lerr != nil {
			return nil, 0, lerr
		}
		starts[cur] = start
		finish[cur] = start + lat
		if finish[cur] > overall {
			overall = finish[cur]
		}
		for _, s := range gr.Succs[cur] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if processed != n {
		return nil, 0, fmt.Errorf("latency: group DAG has a cycle")
	}
	return starts, overall, nil
}
