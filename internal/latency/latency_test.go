package latency

import (
	"math"
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/gate"
	"accqoc/internal/grouping"
)

func divide(t *testing.T, c *circuit.Circuit, maxLayers int) *grouping.Grouping {
	t.Helper()
	gr, err := grouping.Divide(c, grouping.Policy{Name: "t", MaxQubits: 2, MaxLayers: maxLayers})
	if err != nil {
		t.Fatal(err)
	}
	return gr
}

func TestOverallGroupsChain(t *testing.T) {
	// Three sequential chunks on one qubit: latencies add up.
	c := circuit.New(1)
	for i := 0; i < 6; i++ {
		c.MustAppend(gate.T, []int{0})
	}
	gr := divide(t, c, 2) // 3 chunks
	got, err := OverallGroups(gr, func(i int) (float64, error) { return 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("chain latency = %v, want 30", got)
	}
}

func TestOverallGroupsParallelBranches(t *testing.T) {
	// Independent work on two disjoint qubit pairs: latency is the max.
	c := circuit.New(4)
	c.MustAppend(gate.CX, []int{0, 1})
	c.MustAppend(gate.CX, []int{2, 3})
	gr := divide(t, c, 4)
	if len(gr.Groups) != 2 {
		t.Fatalf("expected 2 groups, got %d", len(gr.Groups))
	}
	lat := []float64{100, 250}
	got, err := OverallGroups(gr, func(i int) (float64, error) { return lat[i], nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != 250 {
		t.Fatalf("parallel latency = %v, want 250", got)
	}
}

func TestOverallGroupsDiamond(t *testing.T) {
	// CX(0,1); then parallel single-qubit work on 0 and 1; then CX(0,1):
	// the middle groups overlap.
	c := circuit.New(2)
	c.MustAppend(gate.CX, []int{0, 1})
	// interleave a foreign wire to force group splits
	gr, err := grouping.Divide(c, grouping.Policy{Name: "t", MaxQubits: 2, MaxLayers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := OverallGroups(gr, func(i int) (float64, error) { return 5, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("single group latency = %v", got)
	}
}

func TestOverallGroupsErrorPropagation(t *testing.T) {
	c := circuit.New(1)
	c.MustAppend(gate.T, []int{0})
	gr := divide(t, c, 2)
	if _, err := OverallGroups(gr, func(i int) (float64, error) { return -1, nil }); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestOverallGatesCriticalPath(t *testing.T) {
	// q0: A(10) → C(30) with q1: B(20) feeding C: critical path = 20+30.
	c := circuit.New(2)
	c.MustAppend(gate.X, []int{0})     // 10
	c.MustAppend(gate.X, []int{1})     // 20
	c.MustAppend(gate.CX, []int{0, 1}) // 30
	lat := []float64{10, 20, 30}
	got := OverallGates(c, func(g int) float64 { return lat[g] })
	if got != 50 {
		t.Fatalf("critical path = %v, want 50", got)
	}
}

func TestScheduleStartTimes(t *testing.T) {
	c := circuit.New(1)
	for i := 0; i < 4; i++ {
		c.MustAppend(gate.T, []int{0})
	}
	gr := divide(t, c, 2) // two chunks of 2 gates
	starts, overall, err := Schedule(gr, func(i int) (float64, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	if overall != 14 {
		t.Fatalf("overall = %v", overall)
	}
	if math.Abs(starts[0]-0) > 1e-12 || math.Abs(starts[1]-7) > 1e-12 {
		t.Fatalf("starts = %v", starts)
	}
}

func TestEmptyGrouping(t *testing.T) {
	gr := divide(t, circuit.New(2), 2)
	got, err := OverallGroups(gr, func(i int) (float64, error) { return 1, nil })
	if err != nil || got != 0 {
		t.Fatalf("empty = %v, %v", got, err)
	}
}
