package accqoc

// Failure-injection tests: the pipeline must degrade gracefully when QOC
// training cannot converge, rather than wedging or returning nonsense.

import (
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/gate"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/precompile"
	"accqoc/internal/topology"
)

// strangledOptions makes every 2-qubit group untrainable: the search
// bracket tops out far below the ZZ speed limit.
func strangledOptions(dev *topology.Device) Options {
	o := fastOptions(dev)
	o.Precompile.Search2Q = grape.SearchOptions{MinDuration: 10, MaxDuration: 60, Resolution: 20}
	o.Precompile.Grape.MaxIterations = 60
	return o
}

func TestCompileSurvivesUntrainableGroups(t *testing.T) {
	comp := New(strangledOptions(topology.Linear(2)))
	prog := circuit.New(2)
	prog.MustAppend(gate.H, []int{0})
	prog.MustAppend(gate.CX, []int{0, 1})
	res, err := comp.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	// The CX group cannot train in ≤60 ns; it must fall back to the
	// gate-based price rather than fail the compile.
	if res.OverallLatencyNs <= 0 {
		t.Fatal("no latency despite fallback pricing")
	}
	if res.OverallLatencyNs < 974 {
		t.Fatalf("latency %v below a bare CX: fallback did not price the untrained group",
			res.OverallLatencyNs)
	}
}

func TestProfileRecordsFailures(t *testing.T) {
	g := &grouping.Group{
		Qubits: []int{0, 1},
		Gates:  []gate.Instance{gate.MustInstance(gate.CX, []int{0, 1})},
	}
	uniq, err := grouping.Deduplicate([]*grouping.Group{g})
	if err != nil {
		t.Fatal(err)
	}
	cfg := precompile.Config{
		Grape:    grape.Options{TargetInfidelity: 1e-3, MaxIterations: 60, Restarts: -1, Seed: 1},
		Search2Q: grape.SearchOptions{MinDuration: 10, MaxDuration: 60, Resolution: 20},
	}
	lib, stats, err := precompile.Build(uniq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Entries) != 0 {
		t.Fatal("untrainable group entered the library")
	}
	if len(stats.Failed) != 1 {
		t.Fatalf("failure not recorded: %+v", stats)
	}
}

func TestScheduleWithUntrainedGroups(t *testing.T) {
	comp := New(strangledOptions(topology.Linear(2)))
	prog := circuit.New(2)
	prog.MustAppend(gate.CX, []int{0, 1})
	sched, err := comp.BuildSchedule(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	// Untrained group: nil pulse but a positive gate-based duration.
	found := false
	for _, sp := range sched.Pulses {
		if sp.Pulse == nil && sp.DurationNs > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("expected an untrained group priced gate-based in the schedule")
	}
}

func TestBruteForceSurvivesUntrainableGroups(t *testing.T) {
	comp := New(strangledOptions(topology.Linear(2)))
	prog := circuit.New(2)
	prog.MustAppend(gate.CX, []int{0, 1})
	res, err := comp.CompileBruteForce(prog, BruteForceOptions{MaxQubits: 2, MaxLayers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverallLatencyNs <= 0 {
		t.Fatal("brute force did not fall back")
	}
}
