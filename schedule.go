package accqoc

import (
	"fmt"
	"math"
	"sort"

	"accqoc/internal/circuit"
	"accqoc/internal/gatepulse"
	"accqoc/internal/latency"
	"accqoc/internal/pulse"
)

// ScheduledPulse is one group's pulse placed on the program timeline.
type ScheduledPulse struct {
	// Group indexes into Schedule.Result.Grouping.Groups.
	Group int
	// Qubits are the physical qubits the pulse drives.
	Qubits []int
	// StartNs is the ASAP start time from Algorithm 3.
	StartNs float64
	// Pulse is the channel-correct waveform (qubit-permuted when the
	// library's canonical orientation is mirrored). Nil for groups that
	// failed to train and fall back to gate-based execution.
	Pulse *pulse.Pulse
	// DurationNs is the group's latency (pulse duration, or the
	// gate-based fallback price).
	DurationNs float64
}

// Schedule holds a fully scheduled program.
type Schedule struct {
	Result *CompileResult
	Pulses []ScheduledPulse
	// MakespanNs equals Result.OverallLatencyNs.
	MakespanNs float64
}

// BuildSchedule compiles a program and lays its group pulses out on the
// timeline: each group starts when its DAG predecessors finish. This is
// the artifact a control stack would hand to the waveform generators.
func (c *Compiler) BuildSchedule(prog *circuit.Circuit) (*Schedule, error) {
	res, err := c.Compile(prog)
	if err != nil {
		return nil, err
	}
	gr := res.Grouping
	durations := make([]float64, len(gr.Groups))
	pulses := make([]*pulse.Pulse, len(gr.Groups))
	for i, g := range gr.Groups {
		u, uerr := g.Unitary()
		if uerr != nil {
			return nil, uerr
		}
		if p, ok := c.lib.PulseFor(u); ok {
			pulses[i] = p
			durations[i] = p.Duration()
			continue
		}
		// Gate-based fallback pricing, consistent with Compile.
		var sum float64
		for _, inst := range g.Gates {
			sum += gatepulse.GateLatency(inst.Name, c.opts.Device.Calibration)
		}
		durations[i] = sum
	}
	starts, overall, err := latency.Schedule(gr, func(i int) (float64, error) {
		return durations[i], nil
	})
	if err != nil {
		return nil, err
	}
	sched := &Schedule{Result: res, MakespanNs: overall}
	for i := range gr.Groups {
		sched.Pulses = append(sched.Pulses, ScheduledPulse{
			Group:      i,
			Qubits:     append([]int(nil), gr.Groups[i].Qubits...),
			StartNs:    starts[i],
			Pulse:      pulses[i],
			DurationNs: durations[i],
		})
	}
	sort.Slice(sched.Pulses, func(a, b int) bool {
		if sched.Pulses[a].StartNs != sched.Pulses[b].StartNs {
			return sched.Pulses[a].StartNs < sched.Pulses[b].StartNs
		}
		return sched.Pulses[a].Group < sched.Pulses[b].Group
	})
	return sched, nil
}

// Validate checks the schedule's structural invariants: no overlapping
// pulses on one qubit, dependencies respected, makespan consistent.
func (s *Schedule) Validate() error {
	gr := s.Result.Grouping
	start := make([]float64, len(gr.Groups))
	end := make([]float64, len(gr.Groups))
	for _, sp := range s.Pulses {
		start[sp.Group] = sp.StartNs
		end[sp.Group] = sp.StartNs + sp.DurationNs
	}
	for i := range gr.Groups {
		for _, p := range gr.Preds[i] {
			if start[i] < end[p]-1e-9 {
				return fmt.Errorf("accqoc: schedule violates dependency %d→%d", p, i)
			}
		}
	}
	// Per-qubit exclusivity.
	type span struct{ s, e float64 }
	byQubit := map[int][]span{}
	for _, sp := range s.Pulses {
		for _, q := range sp.Qubits {
			byQubit[q] = append(byQubit[q], span{sp.StartNs, sp.StartNs + sp.DurationNs})
		}
	}
	for q, spans := range byQubit {
		sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
		for i := 1; i < len(spans); i++ {
			if spans[i].s < spans[i-1].e-1e-9 {
				return fmt.Errorf("accqoc: overlapping pulses on qubit %d", q)
			}
		}
	}
	var maxEnd float64
	for _, e := range end {
		if e > maxEnd {
			maxEnd = e
		}
	}
	// Two-sided: an inflated makespan is as wrong as a deflated one — a
	// control stack would pad the program with dead time (decoherence per
	// §II-E) while reporting a latency nobody achieves.
	if math.Abs(maxEnd-s.MakespanNs) > 1e-9 {
		return fmt.Errorf("accqoc: makespan %v disagrees with last pulse end %v", s.MakespanNs, maxEnd)
	}
	return nil
}
