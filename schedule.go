package accqoc

import (
	"fmt"
	"math"
	"sort"

	"accqoc/internal/circuit"
	"accqoc/internal/latency"
	"accqoc/internal/precompile"
	"accqoc/internal/pulse"
	"accqoc/internal/topology"
)

// ScheduledPulse is one group's pulse placed on the program timeline.
type ScheduledPulse struct {
	// Group indexes into Schedule.Result.Grouping.Groups.
	Group int
	// Qubits are the physical qubits the pulse drives.
	Qubits []int
	// StartNs is the ASAP start time from Algorithm 3.
	StartNs float64
	// Pulse is the channel-correct waveform (qubit-permuted when the
	// library's canonical orientation is mirrored). Nil for groups that
	// failed to train and fall back to gate-based execution.
	Pulse *pulse.Pulse
	// DurationNs is the group's latency (pulse duration, or the
	// gate-based fallback price).
	DurationNs float64
	// Key is the library reference of the waveform driving this slot (the
	// group's canonical key); empty for gate-based fallback slots.
	Key string
	// Mirrored marks occurrences whose qubit order is the mirror of the
	// library pulse's canonical orientation. Pulse already has its
	// per-qubit channels exchanged accordingly.
	Mirrored bool
}

// Schedule holds a fully scheduled program.
type Schedule struct {
	Result *CompileResult
	Pulses []ScheduledPulse
	// MakespanNs equals Result.OverallLatencyNs.
	MakespanNs float64
}

// BuildSchedule compiles a program and lays its group pulses out on the
// timeline: each group starts when its DAG predecessors finish. This is
// the artifact a control stack would hand to the waveform generators.
// Scheduling reuses the per-occurrence keys resolved during compilation —
// it is pure library lookup, with no unitary recomputation.
func (c *Compiler) BuildSchedule(prog *circuit.Circuit) (*Schedule, error) {
	res, err := c.Compile(prog)
	if err != nil {
		return nil, err
	}
	return AssembleSchedule(res, c.opts.Device.Calibration, func(key string) (*precompile.Entry, bool) {
		e, ok := c.lib.Entries[key]
		return e, ok
	})
}

// AssembleSchedule lays a resolved compilation out on the timeline — the
// shared back end of BuildSchedule and the server's circuit endpoint. res
// must carry the per-occurrence Keys and Swapped flags recorded by the
// key pass; lookup resolves a canonical key to its trained entry (a miss
// prices the group gate-based, consistent with Compile). Scheduling is
// lookup-only: no group unitary is rebuilt and no orientation search is
// repeated.
func AssembleSchedule(res *CompileResult, cal topology.Calibration, lookup func(key string) (*precompile.Entry, bool)) (*Schedule, error) {
	gr := res.Grouping
	if len(res.Keys) != len(gr.Groups) || len(res.Swapped) != len(gr.Groups) {
		return nil, fmt.Errorf("accqoc: schedule needs %d occurrence keys, have %d keys / %d flags",
			len(gr.Groups), len(res.Keys), len(res.Swapped))
	}
	durations := make([]float64, len(gr.Groups))
	pulses := make([]*pulse.Pulse, len(gr.Groups))
	for i := range gr.Groups {
		if e, ok := lookup(res.Keys[i]); ok && e != nil {
			pulses[i] = precompile.OrientPulse(e.Pulse, res.Swapped[i])
			durations[i] = e.LatencyNs
			continue
		}
		// Gate-based fallback pricing, consistent with Compile.
		durations[i] = GateFallbackNs(gr.Groups[i], cal)
	}
	starts, overall, err := latency.Schedule(gr, func(i int) (float64, error) {
		return durations[i], nil
	})
	if err != nil {
		return nil, err
	}
	sched := &Schedule{Result: res, MakespanNs: overall}
	for i := range gr.Groups {
		sp := ScheduledPulse{
			Group:      i,
			Qubits:     append([]int(nil), gr.Groups[i].Qubits...),
			StartNs:    starts[i],
			Pulse:      pulses[i],
			DurationNs: durations[i],
		}
		if pulses[i] != nil {
			sp.Key = res.Keys[i]
			sp.Mirrored = res.Swapped[i]
		}
		sched.Pulses = append(sched.Pulses, sp)
	}
	sort.Slice(sched.Pulses, func(a, b int) bool {
		if sched.Pulses[a].StartNs != sched.Pulses[b].StartNs {
			return sched.Pulses[a].StartNs < sched.Pulses[b].StartNs
		}
		return sched.Pulses[a].Group < sched.Pulses[b].Group
	})
	return sched, nil
}

// Validate checks the schedule's structural invariants: no overlapping
// pulses on one qubit, dependencies respected, makespan consistent.
func (s *Schedule) Validate() error {
	gr := s.Result.Grouping
	start := make([]float64, len(gr.Groups))
	end := make([]float64, len(gr.Groups))
	for _, sp := range s.Pulses {
		start[sp.Group] = sp.StartNs
		end[sp.Group] = sp.StartNs + sp.DurationNs
	}
	for i := range gr.Groups {
		for _, p := range gr.Preds[i] {
			if start[i] < end[p]-1e-9 {
				return fmt.Errorf("accqoc: schedule violates dependency %d→%d", p, i)
			}
		}
	}
	// Per-qubit exclusivity.
	type span struct{ s, e float64 }
	byQubit := map[int][]span{}
	for _, sp := range s.Pulses {
		for _, q := range sp.Qubits {
			byQubit[q] = append(byQubit[q], span{sp.StartNs, sp.StartNs + sp.DurationNs})
		}
	}
	for q, spans := range byQubit {
		sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
		for i := 1; i < len(spans); i++ {
			if spans[i].s < spans[i-1].e-1e-9 {
				return fmt.Errorf("accqoc: overlapping pulses on qubit %d", q)
			}
		}
	}
	var maxEnd float64
	for _, e := range end {
		if e > maxEnd {
			maxEnd = e
		}
	}
	// Two-sided: an inflated makespan is as wrong as a deflated one — a
	// control stack would pad the program with dead time (decoherence per
	// §II-E) while reporting a latency nobody achieves.
	if math.Abs(maxEnd-s.MakespanNs) > 1e-9 {
		return fmt.Errorf("accqoc: makespan %v disagrees with last pulse end %v", s.MakespanNs, maxEnd)
	}
	return nil
}
