package accqoc

// Cross-module integration tests: invariants that only hold if the whole
// pipeline — mapping, grouping, GRAPE, library, latency DP — composes
// correctly.

import (
	"math"
	"math/cmplx"
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/cmat"
	"accqoc/internal/gate"
	"accqoc/internal/gatepulse"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/latency"
	"accqoc/internal/qasm"
	"accqoc/internal/topology"
	"accqoc/internal/workload"
)

// TestPipelinePulsesImplementTheirGroups verifies the deepest invariant:
// every pulse the compiler put in its library actually implements its
// group's unitary when propagated through the physical model.
func TestPipelinePulsesImplementTheirGroups(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	comp := New(fastOptions(topology.Linear(3)))
	res, err := comp.Compile(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	if res.UncoveredUnique == 0 {
		t.Fatal("expected dynamic training")
	}
	checked := 0
	for i, g := range res.Grouping.Groups {
		key, err := g.Key()
		if err != nil {
			t.Fatal(err)
		}
		e, ok := comp.Library().Entries[key]
		if !ok {
			continue // failed-to-train groups are priced gate-based
		}
		sys, err := hamiltonian.ForQubits(e.NumQubits, comp.Options().Precompile.Ham)
		if err != nil {
			t.Fatal(err)
		}
		u, err := g.Unitary()
		if err != nil {
			t.Fatal(err)
		}
		p, ok := comp.Library().PulseFor(u)
		if !ok {
			t.Fatalf("group %d: key covered but PulseFor missed", i)
		}
		if inf := grape.VerifyPulse(sys, p, u); inf > 5e-2 {
			t.Errorf("group %d pulse infidelity %v against its own unitary", i, inf)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no groups verified")
	}
}

// TestQASMToPulsePipeline drives the pipeline from QASM text to a latency
// number, exercising parser → mapper → grouping → QOC end to end.
func TestQASMToPulsePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/8) q[1];
cx q[1],q[2];
measure q -> c;
`
	prog, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	comp := New(fastOptions(topology.Linear(3)))
	res, err := comp.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverallLatencyNs <= 0 || res.LatencyReduction <= 0 {
		t.Fatalf("pipeline produced no latency: %+v", res)
	}
}

// TestPreparePreservesSemanticsSmall checks that Prepare's full front end
// (CCX decomposition + mapping + swap lowering) preserves the program
// unitary up to the final layout permutation, on a device small enough to
// verify exactly.
func TestPreparePreservesSemanticsSmall(t *testing.T) {
	comp := New(fastOptions(topology.Linear(3)))
	prog := circuit.New(3)
	prog.MustAppend(gate.CCX, []int{0, 1, 2})
	prog.MustAppend(gate.H, []int{0})
	prog.MustAppend(gate.CX, []int{2, 0})
	prep, err := comp.Prepare(prog)
	if err != nil {
		t.Fatal(err)
	}
	ul, err := prog.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	um, err := prep.Physical.Unitary()
	if err != nil {
		t.Fatal(err)
	}
	// Relabel by the final layout.
	n := prog.NumQubits
	dim := 1 << n
	pi := cmat.New(dim, dim)
	for logical := 0; logical < dim; logical++ {
		phys := 0
		for l := 0; l < n; l++ {
			bit := (logical >> (n - 1 - l)) & 1
			phys |= bit << (n - 1 - prep.MapResult.FinalLayout[l])
		}
		pi.Set(phys, logical, 1)
	}
	want := cmat.Mul(pi, ul)
	overlap := cmplx.Abs(cmat.Trace(cmat.Mul(cmat.Dagger(want), um))) / float64(dim)
	if math.Abs(overlap-1) > 1e-9 {
		t.Fatalf("Prepare changed semantics: overlap %v", overlap)
	}
}

// TestLatencyDPConsistency cross-checks Algorithm 3 on groups against the
// same DP on gates when every group holds exactly one gate.
func TestLatencyDPConsistency(t *testing.T) {
	comp := New(fastOptions(topology.Linear(3)))
	prog := smallProgram()
	prep, err := comp.Prepare(prog)
	if err != nil {
		t.Fatal(err)
	}
	cal := topology.MelbourneCalibration()
	// Price every group as the sum of its member gates (serial within a
	// group): the group DP must then lower-bound... precisely, equal the
	// gate DP only if groups serialize exactly the gate critical path.
	// We check the weaker invariant: group DP ≥ gate DP (grouping can only
	// lose intra-group parallelism, never gain beyond it).
	groupLat, err := latency.OverallGroups(prep.Grouping, func(i int) (float64, error) {
		var sum float64
		for _, g := range prep.Grouping.Groups[i].Gates {
			sum += gatepulse.GateLatency(g.Name, cal)
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	gateLat := gatepulse.Overall(prep.Physical, cal)
	if groupLat < gateLat-1e-9 {
		t.Fatalf("group DP %v below gate DP %v — DAG coarsening broken", groupLat, gateLat)
	}
}

// TestWorkloadSuiteCompilesUnderAllPolicies runs Prepare (no training) for
// every policy over a named benchmark, checking policy invariants hold on
// real circuit structure.
func TestWorkloadSuiteCompilesUnderAllPolicies(t *testing.T) {
	prog := workload.QFT(5)
	for _, polName := range []string{"map2b2l", "map2b3l", "map2b4l", "swap2b2l", "swap2b3l", "swap2b4l"} {
		opts := fastOptions(topology.Melbourne())
		pol, err := grouping.PolicyByName(polName)
		if err != nil {
			t.Fatal(err)
		}
		opts.Policy = pol
		comp := New(opts)
		prep, err := comp.Prepare(prog.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", polName, err)
		}
		if circuit.BuildDAG(prep.Physical).NumLayers() == 0 {
			t.Fatalf("%s: physical circuit has no layers", polName)
		}
		for _, g := range prep.Grouping.Groups {
			if len(g.Qubits) > pol.MaxQubits {
				t.Fatalf("%s: group wider than policy", polName)
			}
		}
		hasSwap := false
		for _, g := range prep.Physical.Gates {
			if g.Name == gate.Swap {
				hasSwap = true
			}
		}
		if pol.DecomposeSwap && hasSwap {
			t.Fatalf("%s: swap survived", polName)
		}
	}
}

// TestGateBasedAlwaysSlowOnCXChains pins the baseline model: QOC latency
// for a trained CX group must beat the calibrated 974.9 ns.
func TestGateBasedAlwaysSlowOnCXChains(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	comp := New(fastOptions(topology.Linear(2)))
	prog := circuit.New(2)
	prog.MustAppend(gate.CX, []int{0, 1})
	res, err := comp.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.GateBasedLatencyNs != 974.9 {
		t.Fatalf("baseline CX = %v, want 974.9", res.GateBasedLatencyNs)
	}
	if res.OverallLatencyNs >= 974.9 {
		t.Fatalf("QOC CX latency %v did not beat the calibrated gate", res.OverallLatencyNs)
	}
	// The model's ZZ speed limit bounds it from below.
	if res.OverallLatencyNs < 312 {
		t.Fatalf("QOC CX latency %v below the π/(4J) speed limit", res.OverallLatencyNs)
	}
}
