// QFT: compile the quantum Fourier transform — the kernel of Shor's
// algorithm, the paper's motivating non-variational workload — under
// several grouping policies and compare their latency trade-offs
// (the paper's Fig. 12 in miniature).
//
//	go run ./examples/qft
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"accqoc"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/precompile"
	"accqoc/internal/topology"
	"accqoc/internal/workload"
)

func main() {
	prog := workload.QFT(6)
	fmt.Printf("%s: %d qubits, %d gates\n\n", prog.Name, prog.Circuit.NumQubits, prog.Circuit.GateCount())

	// One shared pulse library across policies: entries are keyed by the
	// group's unitary, so overlapping groups train once.
	shared := precompile.NewLibrary()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tgroups\tcoverage\tQOC (ns)\tgate-based (ns)\treduction")
	for _, pol := range grouping.Policies {
		comp := accqoc.New(accqoc.Options{
			Device: topology.Melbourne(),
			Policy: pol,
			Precompile: precompile.Config{
				Grape:    grape.Options{TargetInfidelity: 1e-3, MaxIterations: 300, Restarts: -1, Seed: 11},
				Search2Q: grape.SearchOptions{MinDuration: 150, MaxDuration: 1500, Resolution: 150},
			},
		})
		comp.SetLibrary(shared)
		res, err := comp.Compile(prog.Circuit)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f%%\t%.0f\t%.0f\t%.2fx\n",
			pol.Name, res.TotalGroups, 100*res.CoverageRate,
			res.OverallLatencyNs, res.GateBasedLatencyNs, res.LatencyReduction)
	}
	tw.Flush()
	fmt.Printf("\nshared library now holds %d pulses\n", len(shared.Entries))
}
