// Example circuit-serving: the whole-program serving path end to end. It
// starts the HTTP compilation server on a loopback port, submits a QASM
// program to POST /v1/circuits/compile, and prints the scheduled pulse
// program that comes back — per-slot start/duration/qubits/waveform refs
// laid out on the timeline, the makespan against the gate-based baseline,
// and the warm repeat that costs only library lookups. A concurrent round
// of circuits sharing uncovered groups shows the singleflight coalescing:
// each shared group trains exactly once across all in-flight circuits.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"accqoc"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/precompile"
	"accqoc/internal/server"
	"accqoc/internal/topology"
)

const program = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
t q[1];
cx q[1],q[2];
h q[2];
`

// sibling shares the first half of program's gate groups, so a concurrent
// submission coalesces on them.
const sibling = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
t q[1];
rx(0.4) q[2];
`

func main() {
	srv := server.New(server.Config{Compile: fastOptions(), Workers: 4})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("circuit compilation server on %s\n\n", base)

	// 1. Cold: the whole pipeline runs — mapping, grouping, MST-ordered
	// training of every unique group, Algorithm 3 scheduling.
	cold, wall := compileCircuit(base, program)
	fmt.Printf("cold circuit: %5.0f ms wall, coverage %3.0f%%, %d unique groups trained\n",
		wall, 100*cold.Compile.CoverageRate, cold.Compile.UncoveredUnique)
	printSchedule(cold)

	// 2. Concurrent circuits sharing uncovered groups coalesce on the
	// store's singleflight: the shared groups train once, total.
	var wg sync.WaitGroup
	for _, src := range []string{sibling, sibling} {
		wg.Add(1)
		go func(src string) { defer wg.Done(); compileCircuit(base, src) }(src)
	}
	wg.Wait()
	st := srv.Store().Stats()
	fmt.Printf("\nafter 2 concurrent sibling circuits: %d trainings total, %d deduped, %d entries\n",
		st.Trainings, st.DedupSuppressed, st.Entries)

	// 3. Warm: the same program again — pure library lookups.
	warm, wallWarm := compileCircuit(base, program)
	fmt.Printf("\nwarm circuit: %5.2f ms wall, coverage %3.0f%%, warm-served %v\n",
		wallWarm, 100*warm.Compile.CoverageRate, warm.Compile.WarmServed)
	if wallWarm > 0 {
		fmt.Printf("cold/warm speedup: %.0fx\n", wall/wallWarm)
	}
}

func printSchedule(cr server.CircuitResponse) {
	fmt.Printf("scheduled pulse program: makespan %.0f ns vs %.0f ns gate-based (%.2fx)\n",
		cr.MakespanNs, cr.Compile.GateLatencyNs, cr.Compile.LatencyReduction)
	for _, sp := range cr.Schedule {
		wf := sp.Waveform
		if wf == "" {
			wf = "(gate-based fallback)"
		}
		mirror := ""
		if sp.Mirrored {
			mirror = " mirrored"
		}
		fmt.Printf("  t=%6.0f ns  +%5.0f ns  qubits %v  %s%s\n",
			sp.StartNs, sp.DurationNs, sp.Qubits, wf, mirror)
	}
	if len(cr.Waveforms) > 0 {
		refs := make([]string, 0, len(cr.Waveforms))
		for ref := range cr.Waveforms {
			refs = append(refs, ref)
		}
		fmt.Printf("  inlined waveforms: %s\n", strings.Join(refs, ", "))
	}
}

func compileCircuit(base, src string) (server.CircuitResponse, float64) {
	body, _ := json.Marshal(server.CircuitRequest{
		CompileRequest: server.CompileRequest{QASM: src},
	})
	start := time.Now()
	resp, err := http.Post(base+"/v1/circuits/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.CircuitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("circuit compile: status %d", resp.StatusCode)
	}
	return out, float64(time.Since(start)) / float64(time.Millisecond)
}

// fastOptions keeps GRAPE budgets small so the demo finishes in seconds.
func fastOptions() accqoc.Options {
	return accqoc.Options{
		Device: topology.Linear(3),
		Policy: grouping.Map2b4l,
		Precompile: precompile.Config{
			Grape:    grape.Options{TargetInfidelity: 1e-2, MaxIterations: 300, Seed: 1},
			Search1Q: grape.SearchOptions{MinDuration: 10, MaxDuration: 120, Resolution: 20},
			Search2Q: grape.SearchOptions{MinDuration: 200, MaxDuration: 1400, Resolution: 200},
		},
	}
}
