// Parallel-workers: the paper's §V-D parallelization. The similarity MST
// over a group category is converted to a node-weighted tree (each node
// carries its training cost) and balance-partitioned across k workers; the
// makespan of the heaviest part bounds the parallel compile time.
//
//	go run ./examples/parallel-workers
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"accqoc/internal/cmat"
	"accqoc/internal/gate"
	"accqoc/internal/partition"
	"accqoc/internal/simgraph"
	"accqoc/internal/similarity"
)

func main() {
	// A category of 24 single-qubit rotation groups (angles on a lattice),
	// as pre-compilation would produce.
	var us []*cmat.Matrix
	var names []string
	for i := 0; i < 24; i++ {
		angle := 0.2 + 0.11*float64(i)
		u, err := gate.Unitary(gate.RZ, []float64{angle})
		if err != nil {
			log.Fatal(err)
		}
		us = append(us, u)
		names = append(names, fmt.Sprintf("rz(%.2f)", angle))
	}

	// Build the similarity graph and its MST (identity-rooted).
	g, err := simgraph.Build(us, similarity.TraceFid)
	if err != nil {
		log.Fatal(err)
	}
	mst, err := g.PrimMST(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("similarity graph: %d vertices, MST weight %.3f\n", g.N, mst.TotalWeight)

	// §V-D: shift each MST edge's cost onto the vertex it adds; the root
	// carries the identity-training cost. Edge distances translate to
	// estimated training iterations: a warm start from distance d costs
	// roughly base + slope·d, a cold start costs coldCost (the calibration
	// any real run can take from its own BuildStats).
	const (
		base, slope = 40.0, 600.0
		coldCost    = 400.0
	)
	costs := make([]float64, len(mst.Cost))
	for v, d := range mst.Cost {
		costs[v] = base + slope*d
	}
	tree, err := partition.FromMST(mst.Parent, costs, coldCost)
	if err != nil {
		log.Fatal(err)
	}
	var serial float64
	for _, w := range tree.Weight {
		serial += w
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workers\tmakespan\tspeedup\tround-robin makespan")
	for _, k := range []int{1, 2, 4, 8} {
		bal, err := partition.Balanced(tree, k)
		if err != nil {
			log.Fatal(err)
		}
		rr := partition.RoundRobin(tree, k)
		fmt.Fprintf(tw, "%d\t%.3f\t%.2fx\t%.3f\n", k, bal.Makespan, bal.Speedup(tree), rr.Makespan)
	}
	tw.Flush()
	fmt.Printf("serial training cost: %.3f (sum of node weights)\n", serial)
	// The compilation sequence itself, for reference:
	steps := mst.CompilationSequence()
	fmt.Printf("first three compile steps: %s, %s, %s\n",
		names[steps[0].Group], names[steps[1].Group], names[steps[2].Group])
}
