// Variational: the paper's generality claim (§I, §VII). Partial-compilation
// approaches accelerate only variational algorithms, whose iterations reuse
// one parameterized group family with changing rotation angles. AccQOC
// "treats the groups with different rotation angles simply as different
// static groups": each new angle is just a new matrix, warm-started from
// the most similar already-compiled pulse — so VQE-style loops get fast
// compiles without any family-specific machinery.
//
//	go run ./examples/variational
package main

import (
	"fmt"
	"log"
	"time"

	"accqoc"
	"accqoc/internal/circuit"
	"accqoc/internal/gate"
	"accqoc/internal/grape"
	"accqoc/internal/precompile"
	"accqoc/internal/topology"
)

// ansatz builds one VQE-style iteration: entangler + parameterized
// rotations (the group family of the paper's Fig. 4a/4b).
func ansatz(theta float64) *circuit.Circuit {
	c := circuit.New(2)
	c.MustAppend(gate.RY, []int{0}, theta)
	c.MustAppend(gate.RY, []int{1}, theta/2)
	c.MustAppend(gate.CX, []int{0, 1})
	c.MustAppend(gate.RZ, []int{1}, theta)
	return c
}

func main() {
	comp := accqoc.New(accqoc.Options{
		Device: topology.Linear(2),
		Precompile: precompile.Config{
			Grape:    grape.Options{TargetInfidelity: 1e-3, MaxIterations: 400, Restarts: -1, Seed: 13},
			Search2Q: grape.SearchOptions{MinDuration: 200, MaxDuration: 1400, Resolution: 150},
		},
	})

	// Simulate an optimizer loop whose angle drifts each iteration — every
	// iteration is a *different* static group (different matrix).
	angles := []float64{0.50, 0.55, 0.61, 0.66, 0.70, 0.73}
	fmt.Println("iter  angle  coverage  train-iters  compile-time  latency(ns)")
	for i, th := range angles {
		t0 := time.Now()
		res, err := comp.Compile(ansatz(th))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %.2f   %5.0f%%    %6d      %-12v  %.0f\n",
			i, th, 100*res.CoverageRate, res.TrainingIterations,
			time.Since(t0).Round(time.Millisecond), res.OverallLatencyNs)
	}
	fmt.Printf("\nlibrary holds %d pulses; later iterations warm-start from the\n"+
		"nearest angle's pulse, so training cost falls as the angles cluster.\n",
		len(comp.Library().Entries))
}
