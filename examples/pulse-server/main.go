// Example pulse-server: the pulse-library service end to end, in one
// process. It starts the HTTP compilation server on a loopback port,
// submits the same circuit three times — once cold, once concurrently
// duplicated, once warm — and shows in /v1/library/stats that the cold
// request paid for all GRAPE training, the concurrent duplicates were
// collapsed by singleflight, and the warm request cost only library hits.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"accqoc"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/libstore"
	"accqoc/internal/precompile"
	"accqoc/internal/server"
	"accqoc/internal/topology"
)

const program = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
t q[1];
cx q[1],q[2];
h q[2];
`

func main() {
	store := libstore.New(libstore.Options{Shards: 8})
	srv := server.New(server.Config{Compile: fastOptions(), Store: store, Workers: 4})
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("pulse-library server on %s\n\n", base)

	// 1. Cold: every unique group trains.
	cold, wall := compileOnce(base)
	fmt.Printf("cold:  %5.0f ms wall  coverage %3.0f%%  trained %d unique groups\n",
		wall, 100*cold.CoverageRate, cold.UncoveredUnique)
	fmt.Printf("       latency %.0f ns QOC vs %.0f ns gate-based (%.2fx), fidelity %.4f\n",
		cold.QOCLatencyNs, cold.GateLatencyNs, cold.LatencyReduction, cold.EstimatedFidelity)

	// 2. Re-warm a fresh server concurrently to show singleflight: all four
	// clients need the same groups, the store trains each exactly once.
	store2 := libstore.New(libstore.Options{Shards: 8})
	srv2 := server.New(server.Config{Compile: fastOptions(), Store: store2, Workers: 4})
	defer srv2.Close()
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv2 := &http.Server{Handler: srv2.Handler()}
	go httpSrv2.Serve(ln2)
	defer httpSrv2.Close()
	base2 := "http://" + ln2.Addr().String()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); compileOnce(base2) }()
	}
	wg.Wait()
	st2 := store2.Stats()
	fmt.Printf("\n4 concurrent duplicate clients on a cold server:\n")
	fmt.Printf("       trainings %d (exactly one per unique group), deduped %d, entries %d\n",
		st2.Trainings, st2.DedupSuppressed, st2.Entries)

	// 3. Warm: same circuit again on the first server.
	warm, wallWarm := compileOnce(base)
	fmt.Printf("\nwarm:  %5.2f ms wall  coverage %3.0f%%  warm-served %v\n",
		wallWarm, 100*warm.CoverageRate, warm.WarmServed)
	if wallWarm > 0 {
		fmt.Printf("       cold/warm speedup: %.0fx\n", wall/wallWarm)
	}

	var stats server.StatsResponse
	getJSON(base+"/v1/library/stats", &stats)
	fmt.Printf("\nlibrary stats: %d entries, %d hits, %d misses, %d trainings\n",
		stats.Library.Entries, stats.Library.Hits, stats.Library.Misses, stats.Library.Trainings)
	fmt.Printf("server stats:  %d requests, %.1f ms total compile time\n",
		stats.Server.Requests, stats.Server.TotalCompileMillis)
}

// fastOptions keeps GRAPE budgets small so the demo finishes in seconds.
func fastOptions() accqoc.Options {
	return accqoc.Options{
		Device: topology.Linear(3),
		Policy: grouping.Map2b4l,
		Precompile: precompile.Config{
			Grape:    grape.Options{TargetInfidelity: 1e-2, MaxIterations: 300, Seed: 1},
			Search1Q: grape.SearchOptions{MinDuration: 10, MaxDuration: 120, Resolution: 20},
			Search2Q: grape.SearchOptions{MinDuration: 200, MaxDuration: 1400, Resolution: 200},
		},
	}
}

func compileOnce(base string) (server.CompileResponse, float64) {
	body, _ := json.Marshal(server.CompileRequest{QASM: program})
	start := time.Now()
	resp, err := http.Post(base+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("compile: status %d", resp.StatusCode)
	}
	return out, float64(time.Since(start)) / float64(time.Millisecond)
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
