// Quickstart: compile a 3-qubit Bell-plus-phase circuit to control pulses
// with AccQOC and compare against gate-based compilation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"accqoc"
	"accqoc/internal/circuit"
	"accqoc/internal/gate"
	"accqoc/internal/grape"
	"accqoc/internal/precompile"
	"accqoc/internal/topology"
)

func main() {
	// A small program: entangle three qubits and add phase structure.
	prog := circuit.New(3)
	prog.MustAppend(gate.H, []int{0})
	prog.MustAppend(gate.CX, []int{0, 1})
	prog.MustAppend(gate.T, []int{1})
	prog.MustAppend(gate.CX, []int{1, 2})
	prog.MustAppend(gate.RZ, []int{2}, 0.7)
	prog.MustAppend(gate.H, []int{2})

	comp := accqoc.New(accqoc.Options{
		Device: topology.Linear(3), // a 3-qubit chain device
		Precompile: precompile.Config{
			Grape: grape.Options{TargetInfidelity: 1e-3, MaxIterations: 400, Seed: 1},
		},
	})

	start := time.Now()
	res, err := comp.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program: %d gates on %d qubits\n", prog.GateCount(), prog.NumQubits)
	fmt.Printf("groups: %d (coverage %.0f%%, %d trained dynamically)\n",
		res.TotalGroups, 100*res.CoverageRate, res.UncoveredUnique)
	fmt.Printf("QOC latency: %.0f ns\n", res.OverallLatencyNs)
	fmt.Printf("gate-based:  %.0f ns\n", res.GateBasedLatencyNs)
	fmt.Printf("latency reduction: %.2fx\n", res.LatencyReduction)
	fmt.Printf("compiled in %v (%d GRAPE iterations)\n",
		time.Since(start).Round(time.Millisecond), res.TrainingIterations)

	// The pulses live in the compiler's library, keyed by group matrix.
	for key, e := range comp.Library().Entries {
		fmt.Printf("  pulse: %d qubits, %.0f ns, %d segments (key %.16s…)\n",
			e.NumQubits, e.LatencyNs, e.Pulse.Segments(), key)
	}
}
