// Precompiled-library: the paper's headline workflow for static (non-
// variational) programs. A pulse library is trained offline from a
// profiling set; a new, unseen program then compiles almost instantly
// because most of its gate groups are already covered.
//
//	go run ./examples/precompiled-library
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"accqoc"
	"accqoc/internal/circuit"
	"accqoc/internal/grape"
	"accqoc/internal/precompile"
	"accqoc/internal/topology"
	"accqoc/internal/workload"
)

func main() {
	opts := accqoc.Options{
		Device: topology.Melbourne(),
		Precompile: precompile.Config{
			Grape:    grape.Options{TargetInfidelity: 1e-3, MaxIterations: 300, Restarts: -1, Seed: 5},
			Search2Q: grape.SearchOptions{MinDuration: 150, MaxDuration: 1500, Resolution: 150},
		},
	}

	// --- Offline: profile three programs and train the library. ---
	comp := accqoc.New(opts)
	var profile []*circuit.Circuit
	for i := 0; i < 3; i++ {
		p, err := workload.Random(fmt.Sprintf("profile_%d", i), 6, 80, int64(40+i))
		if err != nil {
			log.Fatal(err)
		}
		profile = append(profile, p.Circuit)
	}
	t0 := time.Now()
	prof, err := comp.Profile(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static pre-compilation: %d unique groups trained in %v (%d iterations)\n",
		prof.UniqueGroups, time.Since(t0).Round(time.Millisecond), prof.Stats.TotalIterations)

	// Persist the library — this is the artifact a fleet of compile jobs
	// would share.
	dir, err := os.MkdirTemp("", "accqoc-lib")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	libPath := filepath.Join(dir, "pulses.json")
	if err := comp.Library().Save(libPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library saved: %s (%d pulses)\n", libPath, len(comp.Library().Entries))

	// --- Online: a NEW program compiles against the loaded library. ---
	lib, err := precompile.Load(libPath)
	if err != nil {
		log.Fatal(err)
	}
	online := accqoc.New(opts)
	online.SetLibrary(lib)

	target, err := workload.Random("unseen", 6, 80, 999)
	if err != nil {
		log.Fatal(err)
	}
	t1 := time.Now()
	res, err := online.Compile(target.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnew program %q: %d gates\n", target.Name, target.Circuit.GateCount())
	fmt.Printf("coverage: %.1f%% (%d of %d groups pre-compiled)\n",
		100*res.CoverageRate, res.CoveredGroups, res.TotalGroups)
	fmt.Printf("dynamic training: %d uncovered groups, %d iterations\n",
		res.UncoveredUnique, res.TrainingIterations)
	fmt.Printf("latency: %.0f ns QOC vs %.0f ns gate-based (%.2fx)\n",
		res.OverallLatencyNs, res.GateBasedLatencyNs, res.LatencyReduction)
	fmt.Printf("online compile time: %v\n", time.Since(t1).Round(time.Millisecond))
}
