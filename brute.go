package accqoc

import (
	"fmt"
	"time"

	"accqoc/internal/circuit"
	"accqoc/internal/gatepulse"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/latency"
	"accqoc/internal/precompile"
)

// BruteForceOptions configures the brute-force QOC baseline of Figure 15:
// "we form the brute force QOC groups by including as many qubits and gates
// as possible". Group sizes are capped at MaxQubits because per-group GRAPE
// cost grows exponentially — the paper's own aggregates (up to 10 qubits)
// take hours per group, which is exactly the overhead AccQOC removes.
type BruteForceOptions struct {
	// MaxQubits caps brute-force group width (default 3; the 2^n Hilbert
	// space makes 4+ prohibitively slow on a laptop-scale run).
	MaxQubits int
	// MaxLayers caps group depth (default 8).
	MaxLayers int
}

func (o BruteForceOptions) withDefaults() BruteForceOptions {
	if o.MaxQubits == 0 {
		o.MaxQubits = 3
	}
	if o.MaxLayers == 0 {
		o.MaxLayers = 8
	}
	return o
}

// BruteForceResult reports the brute-force QOC baseline on one program.
type BruteForceResult struct {
	Groups             int
	UniqueGroups       int
	TrainingIterations int
	TrainingTime       time.Duration
	OverallLatencyNs   float64
	GateBasedLatencyNs float64
	LatencyReduction   float64
}

// CompileBruteForce compiles a program with brute-force QOC: large groups,
// no pre-compiled library, no similarity acceleration — every unique group
// trains cold with its own latency binary search. This regenerates the
// Figure 15 baseline (better latency than AccQOC, far larger compile time).
func (c *Compiler) CompileBruteForce(prog *circuit.Circuit, bopts BruteForceOptions) (*BruteForceResult, error) {
	bopts = bopts.withDefaults()
	prep, err := c.Prepare(prog)
	if err != nil {
		return nil, err
	}
	pol := grouping.Policy{
		Name:      fmt.Sprintf("brute%db%dl", bopts.MaxQubits, bopts.MaxLayers),
		MaxQubits: bopts.MaxQubits,
		MaxLayers: bopts.MaxLayers,
	}
	gr, err := grouping.Divide(prep.Physical, pol)
	if err != nil {
		return nil, err
	}
	uniq, err := grouping.Deduplicate(gr.Groups)
	if err != nil {
		return nil, err
	}

	res := &BruteForceResult{Groups: len(gr.Groups), UniqueGroups: len(uniq)}
	cfg := c.opts.Precompile
	latencyByKey := map[string]float64{}
	start := time.Now()
	for _, u := range uniq {
		size := u.NumQubits
		sys, serr := hamiltonian.ForQubits(size, cfg.Ham)
		if serr != nil {
			return nil, serr
		}
		target, uerr := u.Group.Unitary()
		if uerr != nil {
			return nil, uerr
		}
		gopts := cfg.Grape
		if gopts.TargetInfidelity == 0 {
			gopts.TargetInfidelity = 1e-3
		}
		if gopts.MaxIterations == 0 {
			gopts.MaxIterations = 600
		}
		gopts.Segments = precompile.SegmentsFor(size)
		sres, cerr := grape.CompileBinarySearch(sys, precompile.CanonicalUnitary(target), gopts, searchFor(cfg, size), nil)
		if cerr != nil {
			// Price the group gate-based; brute force keeps going.
			var sum float64
			for _, g := range u.Group.Gates {
				sum += gatepulse.GateLatency(g.Name, c.opts.Device.Calibration)
			}
			latencyByKey[u.Key] = sum
			continue
		}
		res.TrainingIterations += sres.TotalIterations
		latencyByKey[u.Key] = sres.Duration
	}
	res.TrainingTime = time.Since(start)

	keys := make([]string, len(gr.Groups))
	for i, g := range gr.Groups {
		k, kerr := g.Key()
		if kerr != nil {
			return nil, kerr
		}
		keys[i] = k
	}
	overall, err := latency.OverallGroups(gr, func(i int) (float64, error) {
		return latencyByKey[keys[i]], nil
	})
	if err != nil {
		return nil, err
	}
	res.OverallLatencyNs = overall
	res.GateBasedLatencyNs = gatepulse.Overall(prep.Physical, c.opts.Device.Calibration)
	if overall > 0 {
		res.LatencyReduction = res.GateBasedLatencyNs / overall
	}
	return res, nil
}
