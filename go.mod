module accqoc

go 1.24
