package accqoc

import (
	"sort"

	"accqoc/internal/cmat"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/precompile"
)

// sortUnique orders unique groups by descending frequency then key, for
// deterministic runs.
func sortUnique(us []*grouping.UniqueGroup) {
	sort.Slice(us, func(i, j int) bool {
		if us[i].Count != us[j].Count {
			return us[i].Count > us[j].Count
		}
		return us[i].Key < us[j].Key
	})
}

// sortedSizes returns map keys ascending.
func sortedSizes(m map[int][]*grouping.UniqueGroup) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func canonicalUnitary(u *cmat.Matrix) *cmat.Matrix {
	return precompile.CanonicalUnitary(u)
}

func searchFor(cfg precompile.Config, size int) grape.SearchOptions {
	return cfg.SearchFor(size)
}
