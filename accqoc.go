// Package accqoc implements AccQOC (Cheng, Deng, Qian — ISCA 2020): a
// static/dynamic hybrid workflow that compiles quantum gate groups to
// control pulses with quantum optimal control (GRAPE) under a reasonable
// compilation-time budget.
//
// The pipeline:
//
//  1. Prepare — decompose Toffolis, map the program onto the device with a
//     crosstalk-aware A* mapper, lower swaps per the grouping policy, and
//     divide the physical circuit into gate groups (the 2bNl policies of
//     the paper's Table I).
//  2. Profile — static pre-compilation (§IV): train a pulse library for the
//     deduplicated groups of a profiling set, binary-searching each group's
//     minimal latency, ordered by a similarity MST so each group
//     warm-starts from its most similar predecessor.
//  3. Compile — accelerated dynamic compilation (§V): groups covered by the
//     library cost nothing; uncovered groups are trained in MST order with
//     warm starts, then Algorithm 3 concatenates group pulses along the
//     dependency DAG into the program's overall latency, which is compared
//     against the gate-based compilation baseline.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package accqoc

import (
	"fmt"
	"time"

	"accqoc/internal/circuit"
	"accqoc/internal/cmat"
	"accqoc/internal/crosstalk"
	"accqoc/internal/gatepulse"
	"accqoc/internal/grape"
	"accqoc/internal/grouping"
	"accqoc/internal/hamiltonian"
	"accqoc/internal/latency"
	"accqoc/internal/mapping"
	"accqoc/internal/precompile"
	"accqoc/internal/pulse"
	"accqoc/internal/seedindex"
	"accqoc/internal/simgraph"
	"accqoc/internal/similarity"
	"accqoc/internal/topology"
)

// Options configures a Compiler. The zero value selects the paper's
// defaults: the IBM Melbourne device, the map2b4l policy (the paper's best,
// §VI), crosstalk-aware mapping, and the fidelity1 similarity function.
type Options struct {
	Device *topology.Device
	Policy grouping.Policy
	// Mapping tunes the A* mapper. Its CrosstalkAware field is derived
	// from DisableCrosstalkAware below and any value set here is
	// overwritten; the other fields pass through.
	Mapping mapping.Options
	// DisableCrosstalkAware opts out of the default crosstalk-aware
	// mapping. The explicit flag exists because Mapping.CrosstalkAware's
	// zero value is indistinguishable from "use the default": with this
	// flag false (the default), crosstalk-aware mapping is always on.
	DisableCrosstalkAware bool
	Precompile            precompile.Config
}

func (o Options) withDefaults() Options {
	if o.Device == nil {
		o.Device = topology.Melbourne()
	}
	if o.Policy.Name == "" {
		o.Policy = grouping.Map2b4l
	}
	o.Mapping.CrosstalkAware = !o.DisableCrosstalkAware
	return o
}

// Compiler carries the configuration, the (growing) pulse library, and
// the warm-start seed index kept coherent with it.
type Compiler struct {
	opts  Options
	lib   *precompile.Library
	seeds *seedindex.Index
}

// New returns a Compiler with an empty pulse library.
func New(opts Options) *Compiler {
	opts = opts.withDefaults()
	return &Compiler{
		opts:  opts,
		lib:   precompile.NewLibrary(),
		seeds: seedindex.New(opts.Precompile.Similarity, opts.Precompile.Ham),
	}
}

// Library exposes the current pulse library (for saving, inspection, or
// seeding another compiler). Mutating the returned library directly
// bypasses the seed index; use SetLibrary to swap in an edited one.
func (c *Compiler) Library() *precompile.Library { return c.lib }

// SetLibrary replaces the pulse library (e.g. one loaded from disk) and
// rebuilds the seed index over it — each entry's achieved unitary is
// propagated once here, so later seed lookups cost only similarity
// distances.
func (c *Compiler) SetLibrary(lib *precompile.Library) {
	c.lib = lib
	c.seeds = seedindex.New(c.opts.Precompile.Similarity, c.opts.Precompile.Ham)
	c.seeds.AddLibrary(lib)
}

// Options returns the effective configuration.
func (c *Compiler) Options() Options { return c.opts }

// Prepared is a program after the compilation front end.
type Prepared struct {
	// Physical is the mapped, policy-lowered circuit on device qubits.
	Physical *circuit.Circuit
	// MapResult carries layouts and swap statistics.
	MapResult *mapping.Result
	// Grouping is the policy division of Physical with its group DAG.
	Grouping *grouping.Grouping
	// CrosstalkMetric counts close concurrent CX pairs (§VI-C).
	CrosstalkMetric int
}

// Prepare runs the front end: Toffoli decomposition, crosstalk-aware
// mapping, policy swap lowering and gate grouping.
func (c *Compiler) Prepare(prog *circuit.Circuit) (*Prepared, error) {
	work := prog.DecomposeCCX()
	mapped, err := mapping.Map(work, c.opts.Device, c.opts.Mapping)
	if err != nil {
		return nil, fmt.Errorf("accqoc: mapping: %w", err)
	}
	phys := mapped.Mapped
	if c.opts.Policy.DecomposeSwap {
		phys, err = mapping.DecomposeSwaps(phys, c.opts.Device)
		if err != nil {
			return nil, fmt.Errorf("accqoc: swap lowering: %w", err)
		}
	}
	gr, err := grouping.Divide(phys, c.opts.Policy)
	if err != nil {
		return nil, fmt.Errorf("accqoc: grouping: %w", err)
	}
	return &Prepared{
		Physical:        phys,
		MapResult:       mapped,
		Grouping:        gr,
		CrosstalkMetric: crosstalk.Metric(phys, c.opts.Device),
	}, nil
}

// ProfileResult summarizes static pre-compilation.
type ProfileResult struct {
	Programs     int
	UniqueGroups int
	Stats        *precompile.BuildStats
}

// Profile runs static pre-compilation (§IV): the programs are prepared
// with the configured policy, their groups deduplicated into a category,
// and the category trained into the compiler's library.
func (c *Compiler) Profile(programs []*circuit.Circuit) (*ProfileResult, error) {
	var all []*grouping.Group
	for i, p := range programs {
		prep, err := c.Prepare(p)
		if err != nil {
			return nil, fmt.Errorf("accqoc: profiling program %d: %w", i, err)
		}
		all = append(all, prep.Grouping.Groups...)
	}
	uniq, err := grouping.Deduplicate(all)
	if err != nil {
		return nil, err
	}
	cfg := c.opts.Precompile
	cfg.UseMST = true
	lib, stats, err := precompile.Build(uniq, cfg)
	if err != nil {
		return nil, err
	}
	// Merge into the live library (later profiles extend earlier ones).
	c.lib.Merge(lib)
	c.seeds.AddLibrary(lib)
	return &ProfileResult{Programs: len(programs), UniqueGroups: len(uniq), Stats: stats}, nil
}

// ProfileParallel is Profile with the §V-D worker pool: the similarity MST
// of each group-size class is balance-partitioned across the given number
// of workers and the parts train concurrently.
func (c *Compiler) ProfileParallel(programs []*circuit.Circuit, workers int) (*ProfileResult, error) {
	var all []*grouping.Group
	for i, p := range programs {
		prep, err := c.Prepare(p)
		if err != nil {
			return nil, fmt.Errorf("accqoc: profiling program %d: %w", i, err)
		}
		all = append(all, prep.Grouping.Groups...)
	}
	uniq, err := grouping.Deduplicate(all)
	if err != nil {
		return nil, err
	}
	cfg := c.opts.Precompile
	res, err := precompile.ParallelBuild(uniq, cfg, workers)
	if err != nil {
		return nil, err
	}
	c.lib.Merge(res.Library)
	c.seeds.AddLibrary(res.Library)
	return &ProfileResult{Programs: len(programs), UniqueGroups: len(uniq), Stats: res.Stats}, nil
}

// GroupPlan is the pre-resolution view of one program: the prepared
// circuit plus each group occurrence's canonical library key and
// orientation, computed in a single pass (every group unitary is built
// exactly once). Both the batch Compile path and the serving path resolve
// a plan against their respective libraries; scheduling afterwards is
// lookup-only.
type GroupPlan struct {
	Prepared *Prepared
	// Keys[i] is the canonical library key of occurrence i; Swapped[i]
	// reports that the occurrence mirrors the canonical qubit orientation
	// (its pulse replays with the per-qubit channels exchanged).
	Keys    []string
	Swapped []bool
	// Unique are the occurrences deduplicated by key, in first-occurrence
	// order, with occurrence counts.
	Unique []*grouping.UniqueGroup
}

// PlanGroups runs the compilation front end and the canonical-key pass
// without resolving or training anything.
func (c *Compiler) PlanGroups(prog *circuit.Circuit) (*GroupPlan, error) {
	prep, err := c.Prepare(prog)
	if err != nil {
		return nil, err
	}
	gr := prep.Grouping
	plan := &GroupPlan{
		Prepared: prep,
		Keys:     make([]string, len(gr.Groups)),
		Swapped:  make([]bool, len(gr.Groups)),
	}
	for i, g := range gr.Groups {
		u, uerr := g.Unitary()
		if uerr != nil {
			return nil, uerr
		}
		plan.Keys[i], plan.Swapped[i] = grouping.CanonicalOrientation(u)
	}
	plan.Unique = grouping.DeduplicateKeyed(gr.Groups, plan.Keys)
	return plan, nil
}

// Result seeds a CompileResult with the plan's prepared program and
// occurrence keys — the fields schedule assembly needs. Resolution
// counters (coverage, training cost, latencies) are the caller's to fill.
func (p *GroupPlan) Result() *CompileResult {
	return &CompileResult{
		Prepared: *p.Prepared,
		Keys:     append([]string(nil), p.Keys...),
		Swapped:  append([]bool(nil), p.Swapped...),
	}
}

// CompileResult reports one program's accelerated dynamic compilation.
type CompileResult struct {
	Prepared

	// Keys and Swapped record, per group occurrence, the canonical library
	// key and whether the occurrence mirrors the canonical orientation —
	// resolved once during the key pass so that scheduling never rebuilds
	// a unitary or repeats the orientation search.
	Keys    []string
	Swapped []bool

	// Coverage of group occurrences by the pre-compiled library (§V-A).
	CoverageRate  float64
	CoveredGroups int
	TotalGroups   int

	// Dynamic-compilation cost for the uncovered groups.
	UncoveredUnique    int
	TrainingIterations int
	TrainingTime       time.Duration

	// Latency results (Algorithm 3) against the gate-based baseline.
	OverallLatencyNs   float64
	GateBasedLatencyNs float64
	LatencyReduction   float64 // gate-based / QOC

	// EstimatedFidelity folds gate errors, crosstalk inflation and
	// decoherence over the QOC latency (§II-E accounting).
	EstimatedFidelity float64
}

// Compile runs accelerated dynamic compilation on one program: covered
// groups are free, uncovered groups train in similarity-MST order with
// warm starts, and the overall latency is assembled with Algorithm 3.
// Newly trained pulses are added to the library, so later programs
// benefit.
func (c *Compiler) Compile(prog *circuit.Circuit) (*CompileResult, error) {
	plan, err := c.PlanGroups(prog)
	if err != nil {
		return nil, err
	}
	res := plan.Result()
	gr := plan.Prepared.Grouping

	// Coverage pass (§V-A): split the deduplicated plan into covered and
	// uncovered unique groups.
	res.TotalGroups = len(gr.Groups)
	var uncovered []*grouping.UniqueGroup
	for _, u := range plan.Unique {
		if _, ok := c.lib.Entries[u.Key]; ok {
			res.CoveredGroups += u.Count
			continue
		}
		uncovered = append(uncovered, u)
	}
	if res.TotalGroups > 0 {
		res.CoverageRate = float64(res.CoveredGroups) / float64(res.TotalGroups)
	} else {
		res.CoverageRate = 1
	}
	res.UncoveredUnique = len(uncovered)

	// Train uncovered groups (§V-B/C): MST order with warm starts, with
	// library pulses as additional seeds for identity-rooted vertices.
	start := time.Now()
	if len(uncovered) > 0 {
		sortUnique(uncovered)
		iters, terr := c.trainUncovered(uncovered)
		if terr != nil {
			return nil, terr
		}
		res.TrainingIterations = iters
	}
	res.TrainingTime = time.Since(start)

	// Latency assembly (Algorithm 3) over per-occurrence latencies.
	overall, err := latency.OverallGroups(gr, func(i int) (float64, error) {
		e, ok := c.lib.Entries[res.Keys[i]]
		if !ok {
			// The group failed to train within budget: fall back to the
			// gate-based latency of its member gates so the program still
			// compiles end to end.
			return c.gateFallbackNs(gr.Groups[i]), nil
		}
		return e.LatencyNs, nil
	})
	if err != nil {
		return nil, err
	}
	res.OverallLatencyNs = overall
	res.GateBasedLatencyNs = gatepulse.Overall(plan.Prepared.Physical, c.opts.Device.Calibration)
	if overall > 0 {
		res.LatencyReduction = res.GateBasedLatencyNs / overall
	}
	res.EstimatedFidelity = crosstalk.ProgramFidelity(plan.Prepared.Physical, c.opts.Device, overall)
	return res, nil
}

// gateFallbackNs prices an untrained group under the compiler's device.
func (c *Compiler) gateFallbackNs(g *grouping.Group) float64 {
	return GateFallbackNs(g, c.opts.Device.Calibration)
}

// GateFallbackNs prices an untrained group as the sum of its member
// gates' calibrated pulse latencies — the gate-based fallback shared by
// compilation, schedule assembly, and the serving path, so all three
// always agree on an uncovered group's duration.
func GateFallbackNs(g *grouping.Group, cal topology.Calibration) float64 {
	var sum float64
	for _, inst := range g.Gates {
		sum += gatepulse.GateLatency(inst.Name, cal)
	}
	return sum
}

// trainUncovered compiles the uncovered unique groups per size class in
// similarity-MST order and installs the results into the library. It
// returns the summed GRAPE iterations.
func (c *Compiler) trainUncovered(uncovered []*grouping.UniqueGroup) (int, error) {
	cfg := c.opts.Precompile
	fn := cfg.Similarity
	if fn == "" {
		fn = similarity.TraceFid
	}
	bySize := map[int][]*grouping.UniqueGroup{}
	for _, u := range uncovered {
		bySize[u.NumQubits] = append(bySize[u.NumQubits], u)
	}
	totalIters := 0
	for _, size := range sortedSizes(bySize) {
		class := bySize[size]
		sys, err := hamiltonian.ForQubits(size, cfg.Ham)
		if err != nil {
			return totalIters, err
		}
		us := make([]*cmat.Matrix, len(class))
		for i, g := range class {
			u, uerr := g.Group.Unitary()
			if uerr != nil {
				return totalIters, uerr
			}
			us[i] = canonicalUnitary(u)
		}
		var steps []simgraph.Step
		if len(class) > 1 {
			sg, serr := simgraph.Build(us, fn)
			if serr != nil {
				return totalIters, serr
			}
			mst, merr := sg.PrimMST(0)
			if merr != nil {
				return totalIters, merr
			}
			steps = mst.CompilationSequence()
		} else {
			steps = simgraph.ColdSequence(len(class))
		}

		gopts := cfg.Grape
		if gopts.TargetInfidelity == 0 {
			gopts.TargetInfidelity = 1e-3
		}
		if gopts.MaxIterations == 0 {
			gopts.MaxIterations = 600
		}
		gopts.Segments = precompile.SegmentsFor(size)
		sopts := searchFor(cfg, size)

		trained := make([]*pulse.Pulse, len(class))
		durations := make([]float64, len(class))
		warmTol := similarity.WarmThreshold(fn, sys.Dim)
		for _, step := range steps {
			var seed *pulse.Pulse
			stepSopts := sopts
			if step.WarmFrom >= 0 && trained[step.WarmFrom] != nil {
				stepSopts.HintDuration = durations[step.WarmFrom]
				if step.Distance <= warmTol {
					seed = trained[step.WarmFrom]
				}
			} else {
				// Identity-rooted: seed from the closest covered library
				// pulse when one is similar enough (§V-C). Its latency
				// doubles as the binary-search bracket hint.
				var hint float64
				seed, hint = c.librarySeed(us[step.Group], size)
				stepSopts.HintDuration = hint
			}
			sres, cerr := grape.CompileBinarySearch(sys, us[step.Group], gopts, stepSopts, seed)
			if cerr != nil {
				// Unreachable in the bracket — leave uncovered; Compile's
				// latency fallback prices it gate-based.
				continue
			}
			totalIters += sres.TotalIterations
			trained[step.Group] = sres.Pulse
			durations[step.Group] = sres.Duration
			entry := &precompile.Entry{
				Key:        class[step.Group].Key,
				NumQubits:  size,
				Pulse:      sres.Pulse,
				LatencyNs:  sres.Duration,
				Iterations: sres.TotalIterations,
				Frequency:  class[step.Group].Count,
				Infidelity: sres.Infidelity,
			}
			c.lib.Entries[entry.Key] = entry
			// Index under the training target (within TargetInfidelity of
			// the achieved unitary) so the insert costs no propagation and
			// later groups in this same compilation can seed from it.
			c.seeds.InsertWithUnitary(entry, us[step.Group])
		}
	}
	return totalIters, nil
}

// librarySeed finds the most similar covered pulse of the same size via
// the seed index, admitted under similarity.WarmThreshold for the
// compiler's similarity function — the admission scale is function- and
// dimension-dependent (a fixed cut-off silently rejected every L1/L2
// neighbor of multi-qubit groups). It returns the pulse and its latency
// (the binary-search hint), or (nil, 0).
func (c *Compiler) librarySeed(u *cmat.Matrix, size int) (*pulse.Pulse, float64) {
	seed, ok := c.seeds.Nearest(u, size)
	if !ok {
		return nil, 0
	}
	return seed.Pulse, seed.LatencyNs
}
