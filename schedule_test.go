package accqoc

import (
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/topology"
)

func TestBuildScheduleValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	comp := New(fastOptions(topology.Linear(3)))
	sched, err := comp.BuildSchedule(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Pulses) != len(sched.Result.Grouping.Groups) {
		t.Fatalf("schedule has %d pulses for %d groups",
			len(sched.Pulses), len(sched.Result.Grouping.Groups))
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if sched.MakespanNs != sched.Result.OverallLatencyNs {
		t.Fatalf("makespan %v != compile latency %v",
			sched.MakespanNs, sched.Result.OverallLatencyNs)
	}
	// Pulses are sorted by start time.
	for i := 1; i < len(sched.Pulses); i++ {
		if sched.Pulses[i].StartNs < sched.Pulses[i-1].StartNs {
			t.Fatal("schedule not sorted by start time")
		}
	}
	// All trained groups carry a waveform.
	for _, sp := range sched.Pulses {
		if sp.Pulse == nil {
			continue
		}
		if sp.Pulse.Duration() != sp.DurationNs {
			t.Fatalf("pulse duration %v disagrees with slot %v",
				sp.Pulse.Duration(), sp.DurationNs)
		}
	}
}

func newEmpty(n int) *circuit.Circuit { return circuit.New(n) }

func TestScheduleEmptyProgram(t *testing.T) {
	comp := New(fastOptions(topology.Linear(2)))
	sched, err := comp.BuildSchedule(newEmpty(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Pulses) != 0 || sched.MakespanNs != 0 {
		t.Fatalf("empty schedule: %+v", sched)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
}

// newEmpty builds an empty circuit (helper kept beside its only use).
