package accqoc

import (
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/gate"
	"accqoc/internal/grouping"
	"accqoc/internal/precompile"
	"accqoc/internal/pulse"
	"accqoc/internal/topology"
)

func TestBuildScheduleValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	comp := New(fastOptions(topology.Linear(3)))
	sched, err := comp.BuildSchedule(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Pulses) != len(sched.Result.Grouping.Groups) {
		t.Fatalf("schedule has %d pulses for %d groups",
			len(sched.Pulses), len(sched.Result.Grouping.Groups))
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if sched.MakespanNs != sched.Result.OverallLatencyNs {
		t.Fatalf("makespan %v != compile latency %v",
			sched.MakespanNs, sched.Result.OverallLatencyNs)
	}
	// Pulses are sorted by start time.
	for i := 1; i < len(sched.Pulses); i++ {
		if sched.Pulses[i].StartNs < sched.Pulses[i-1].StartNs {
			t.Fatal("schedule not sorted by start time")
		}
	}
	// All trained groups carry a waveform.
	for _, sp := range sched.Pulses {
		if sp.Pulse == nil {
			continue
		}
		if sp.Pulse.Duration() != sp.DurationNs {
			t.Fatalf("pulse duration %v disagrees with slot %v",
				sp.Pulse.Duration(), sp.DurationNs)
		}
	}
}

func newEmpty(n int) *circuit.Circuit { return circuit.New(n) }

func TestScheduleEmptyProgram(t *testing.T) {
	comp := New(fastOptions(topology.Linear(2)))
	sched, err := comp.BuildSchedule(newEmpty(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Pulses) != 0 || sched.MakespanNs != 0 {
		t.Fatalf("empty schedule: %+v", sched)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
}

// newEmpty builds an empty circuit (helper kept beside its only use).

// handSchedule hand-builds a minimal schedule (no training) for Validate
// checks.
func handSchedule(t *testing.T) *Schedule {
	t.Helper()
	c := circuit.New(1)
	c.MustAppend(gate.H, []int{0})
	gr, err := grouping.Divide(c, grouping.Map2b4l)
	if err != nil || len(gr.Groups) == 0 {
		t.Fatalf("grouping: %d groups, err %v", len(gr.Groups), err)
	}
	s := &Schedule{
		Result:     &CompileResult{Prepared: Prepared{Grouping: gr}},
		MakespanNs: 100,
	}
	for i := range gr.Groups {
		s.Pulses = append(s.Pulses, ScheduledPulse{
			Group: i, Qubits: gr.Groups[i].Qubits, StartNs: 0, DurationNs: 100,
		})
	}
	return s
}

// TestValidateMakespanTwoSided covers both failure directions of the
// makespan consistency check. The inflated case is the regression: the
// old one-sided check accepted any makespan at or above the last pulse
// end.
func TestValidateMakespanTwoSided(t *testing.T) {
	if s := handSchedule(t); s.Validate() != nil {
		t.Fatalf("consistent schedule rejected: %v", s.Validate())
	}

	inflated := handSchedule(t)
	inflated.MakespanNs = 250 // above every pulse end
	if inflated.Validate() == nil {
		t.Fatal("inflated makespan accepted (one-sided check regression)")
	}

	deflated := handSchedule(t)
	deflated.MakespanNs = 40 // below the last pulse end
	if deflated.Validate() == nil {
		t.Fatal("deflated makespan accepted")
	}
}

// TestAssembleScheduleLookupOnly pins the BuildSchedule bugfix: schedule
// assembly must consume the per-occurrence keys threaded through the
// CompileResult instead of recomputing each group's unitary and redoing
// the PulseFor orientation search. The sentinel key is reachable only
// through the threaded keys — a fresh unitary-based lookup could never
// produce it — so a regression to recompute-and-look-up fails loudly.
func TestAssembleScheduleLookupOnly(t *testing.T) {
	comp := New(fastOptions(topology.Linear(2)))
	c := circuit.New(2)
	c.MustAppend(gate.H, []int{0})
	plan, err := comp.PlanGroups(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Keys) != len(plan.Prepared.Grouping.Groups) {
		t.Fatalf("plan has %d keys for %d groups", len(plan.Keys), len(plan.Prepared.Grouping.Groups))
	}

	res := plan.Result()
	lib := precompile.NewLibrary()
	sentinel := &precompile.Entry{
		Key:       "sentinel",
		NumQubits: 1,
		Pulse:     pulse.New([]string{"x0", "y0"}, 4, 2),
		LatencyNs: 123,
	}
	lib.Entries["sentinel"] = sentinel
	for i := range res.Keys {
		res.Keys[i] = "sentinel"
	}
	sched, err := AssembleSchedule(res, comp.Options().Device.Calibration,
		func(key string) (*precompile.Entry, bool) {
			e, ok := lib.Entries[key]
			return e, ok
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range sched.Pulses {
		if sp.Key != "sentinel" {
			t.Fatalf("slot resolved %q — scheduling did not use the threaded key", sp.Key)
		}
		if sp.DurationNs != 123 {
			t.Fatalf("slot priced %v, want the sentinel entry's 123", sp.DurationNs)
		}
	}
}

// TestAssembleScheduleMirrored: a mirrored occurrence gets the library
// pulse with its per-qubit channels exchanged, and the slot says so.
func TestAssembleScheduleMirrored(t *testing.T) {
	comp := New(fastOptions(topology.Linear(2)))
	c := circuit.New(2)
	c.MustAppend(gate.CX, []int{0, 1})
	plan, err := comp.PlanGroups(c)
	if err != nil {
		t.Fatal(err)
	}
	res := plan.Result()
	// Force the mirrored orientation for every occurrence.
	for i := range res.Swapped {
		res.Swapped[i] = true
	}
	p := pulse.New([]string{"x0", "y0", "x1", "y1"}, 2, 1)
	p.Amps[0][0], p.Amps[1][0], p.Amps[2][0], p.Amps[3][0] = 1, 2, 3, 4
	lib := precompile.NewLibrary()
	for _, key := range res.Keys {
		lib.Entries[key] = &precompile.Entry{Key: key, NumQubits: 2, Pulse: p, LatencyNs: 2}
	}
	sched, err := AssembleSchedule(res, comp.Options().Device.Calibration,
		func(key string) (*precompile.Entry, bool) {
			e, ok := lib.Entries[key]
			return e, ok
		})
	if err != nil {
		t.Fatal(err)
	}
	sp := sched.Pulses[0]
	if !sp.Mirrored {
		t.Fatal("mirrored occurrence not flagged")
	}
	if sp.Pulse.Amps[0][0] != 3 || sp.Pulse.Amps[2][0] != 1 {
		t.Fatalf("channels not exchanged: %v", sp.Pulse.Amps)
	}
	// The library's canonical pulse is untouched.
	if p.Amps[0][0] != 1 {
		t.Fatal("orientation mutated the stored pulse")
	}
}

// TestBuildScheduleKeysMatchCompile: the schedule's waveform refs are
// exactly the keys Compile resolved, and each slot's pulse is the library
// entry for its key (no re-derivation anywhere).
func TestBuildScheduleKeysMatchCompile(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	comp := New(fastOptions(topology.Linear(3)))
	sched, err := comp.BuildSchedule(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	res := sched.Result
	for _, sp := range sched.Pulses {
		if sp.Pulse == nil {
			continue
		}
		if sp.Key != res.Keys[sp.Group] {
			t.Fatalf("slot %d carries key %.16q, compile resolved %.16q", sp.Group, sp.Key, res.Keys[sp.Group])
		}
		e, ok := comp.Library().Entries[sp.Key]
		if !ok {
			t.Fatalf("slot %d references a key missing from the library", sp.Group)
		}
		if sp.DurationNs != e.LatencyNs {
			t.Fatalf("slot %d duration %v != entry latency %v", sp.Group, sp.DurationNs, e.LatencyNs)
		}
	}
}
