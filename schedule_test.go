package accqoc

import (
	"testing"

	"accqoc/internal/circuit"
	"accqoc/internal/gate"
	"accqoc/internal/grouping"
	"accqoc/internal/topology"
)

func TestBuildScheduleValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pulses; skipped in -short")
	}
	comp := New(fastOptions(topology.Linear(3)))
	sched, err := comp.BuildSchedule(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Pulses) != len(sched.Result.Grouping.Groups) {
		t.Fatalf("schedule has %d pulses for %d groups",
			len(sched.Pulses), len(sched.Result.Grouping.Groups))
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if sched.MakespanNs != sched.Result.OverallLatencyNs {
		t.Fatalf("makespan %v != compile latency %v",
			sched.MakespanNs, sched.Result.OverallLatencyNs)
	}
	// Pulses are sorted by start time.
	for i := 1; i < len(sched.Pulses); i++ {
		if sched.Pulses[i].StartNs < sched.Pulses[i-1].StartNs {
			t.Fatal("schedule not sorted by start time")
		}
	}
	// All trained groups carry a waveform.
	for _, sp := range sched.Pulses {
		if sp.Pulse == nil {
			continue
		}
		if sp.Pulse.Duration() != sp.DurationNs {
			t.Fatalf("pulse duration %v disagrees with slot %v",
				sp.Pulse.Duration(), sp.DurationNs)
		}
	}
}

func newEmpty(n int) *circuit.Circuit { return circuit.New(n) }

func TestScheduleEmptyProgram(t *testing.T) {
	comp := New(fastOptions(topology.Linear(2)))
	sched, err := comp.BuildSchedule(newEmpty(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Pulses) != 0 || sched.MakespanNs != 0 {
		t.Fatalf("empty schedule: %+v", sched)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
}

// newEmpty builds an empty circuit (helper kept beside its only use).

// handSchedule hand-builds a minimal schedule (no training) for Validate
// checks.
func handSchedule(t *testing.T) *Schedule {
	t.Helper()
	c := circuit.New(1)
	c.MustAppend(gate.H, []int{0})
	gr, err := grouping.Divide(c, grouping.Map2b4l)
	if err != nil || len(gr.Groups) == 0 {
		t.Fatalf("grouping: %d groups, err %v", len(gr.Groups), err)
	}
	s := &Schedule{
		Result:     &CompileResult{Prepared: Prepared{Grouping: gr}},
		MakespanNs: 100,
	}
	for i := range gr.Groups {
		s.Pulses = append(s.Pulses, ScheduledPulse{
			Group: i, Qubits: gr.Groups[i].Qubits, StartNs: 0, DurationNs: 100,
		})
	}
	return s
}

// TestValidateMakespanTwoSided covers both failure directions of the
// makespan consistency check. The inflated case is the regression: the
// old one-sided check accepted any makespan at or above the last pulse
// end.
func TestValidateMakespanTwoSided(t *testing.T) {
	if s := handSchedule(t); s.Validate() != nil {
		t.Fatalf("consistent schedule rejected: %v", s.Validate())
	}

	inflated := handSchedule(t)
	inflated.MakespanNs = 250 // above every pulse end
	if inflated.Validate() == nil {
		t.Fatal("inflated makespan accepted (one-sided check regression)")
	}

	deflated := handSchedule(t)
	deflated.MakespanNs = 40 // below the last pulse end
	if deflated.Validate() == nil {
		t.Fatal("deflated makespan accepted")
	}
}
